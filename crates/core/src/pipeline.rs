//! The end-to-end protection pipeline.
//!
//! [`protect`] chains the two passes in their required order — guards on
//! plaintext, then encryption on the final layout — and merges the hardware
//! configuration both halves need into one [`SecMonConfig`].

use flexprot_isa::Image;
use flexprot_secmon::{SecMon, SecMonConfig};
use flexprot_sim::{Machine, RunResult, SimConfig};
use flexprot_trace::{SharedSink, TraceEvent};

use crate::encrypt::{encrypt_text, EncryptConfig};
use crate::error::ProtectError;
use crate::guards::{insert_guards, GuardConfig, Selection};
use crate::optimize::Plan;
use crate::profile::Profile;
use crate::watermark;

/// What to apply: either, both, or neither layer.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProtectionConfig {
    /// Guard layer, if enabled.
    pub guards: Option<GuardConfig>,
    /// Encryption layer, if enabled.
    pub encryption: Option<EncryptConfig>,
    /// Covert payload embedded in the guard salt channel (requires the
    /// guard layer; applied before encryption).
    pub watermark: Option<Vec<u8>>,
    /// Forwarded to the monitor: abort on first tamper event (default
    /// true via [`ProtectionConfig::new`]).
    pub halt_on_tamper: bool,
    /// Run the translation validator (`flexprot-verify`'s `equiv`) as a
    /// mandatory self-check: refuse to ship unless the protected image is
    /// *proven* semantically equivalent to the baseline (default false —
    /// the lighter invariant verification always runs).
    pub validate_translation: bool,
    /// Run the key-flow taint analysis (`flexprot-verify`'s `taint`) as a
    /// mandatory post-condition: refuse to ship when key-derived data
    /// provably escapes to an observable sink (FP901/FP902; default
    /// false).
    pub key_flow_check: bool,
}

impl ProtectionConfig {
    /// Both layers off; enable via the builder-style helpers.
    pub fn new() -> ProtectionConfig {
        ProtectionConfig {
            guards: None,
            encryption: None,
            watermark: None,
            halt_on_tamper: true,
            validate_translation: false,
            key_flow_check: false,
        }
    }

    /// Enables the guard layer.
    pub fn with_guards(mut self, guards: GuardConfig) -> ProtectionConfig {
        self.guards = Some(guards);
        self
    }

    /// Enables the encryption layer.
    pub fn with_encryption(mut self, encryption: EncryptConfig) -> ProtectionConfig {
        self.encryption = Some(encryption);
        self
    }

    /// Embeds a covert payload in the guard salt channel (see
    /// [`crate::watermark`]). Requires [`ProtectionConfig::with_guards`].
    pub fn with_watermark(mut self, payload: impl Into<Vec<u8>>) -> ProtectionConfig {
        self.watermark = Some(payload.into());
        self
    }

    /// Makes the translation validator a mandatory self-check:
    /// [`protect`] fails with [`ProtectError::TranslationUnproven`] unless
    /// the protected image is *proven* equivalent to the baseline.
    pub fn with_translation_validation(mut self) -> ProtectionConfig {
        self.validate_translation = true;
        self
    }

    /// Makes the key-flow taint analysis a mandatory post-condition:
    /// [`protect`] fails with [`ProtectError::KeyFlowLeak`] when key-derived
    /// data (a ciphertext read) provably reaches an observable sink —
    /// a store outside every encrypted region (FP901) or a syscall operand
    /// (FP902).
    pub fn with_key_flow_check(mut self) -> ProtectionConfig {
        self.key_flow_check = true;
        self
    }

    /// Builds a configuration from an optimizer [`Plan`].
    ///
    /// Functions with a positive guard density go into a per-function guard
    /// selection; functions marked for encryption form the encryption scope.
    pub fn from_plan(plan: &Plan, guards: GuardConfig, encryption: EncryptConfig) -> Self {
        let densities: std::collections::BTreeMap<String, f64> = plan
            .functions
            .iter()
            .filter(|(_, fp)| fp.guard_density > 0.0)
            .map(|(name, fp)| (name.clone(), fp.guard_density))
            .collect();
        let scope: std::collections::BTreeSet<String> = plan
            .functions
            .iter()
            .filter(|(_, fp)| fp.encrypt)
            .map(|(name, _)| name.clone())
            .collect();
        let mut config = ProtectionConfig::new();
        if !densities.is_empty() {
            config.guards = Some(GuardConfig {
                selection: Selection::PerFunction(densities),
                ..guards
            });
        }
        if !scope.is_empty() {
            config.encryption = Some(EncryptConfig {
                scope: Some(scope),
                ..encryption
            });
        }
        config
    }
}

/// Summary of what a protection run did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProtectReport {
    /// Guard sequences inserted.
    pub guards_inserted: usize,
    /// Text words before protection.
    pub text_words_before: usize,
    /// Text words after protection.
    pub text_words_after: usize,
    /// Encrypted regions configured.
    pub encrypted_regions: usize,
    /// Spacing bound provisioned, if any.
    pub spacing_bound: Option<u64>,
}

impl ProtectReport {
    /// Static code-size overhead, e.g. `0.08` for +8%.
    pub fn size_overhead_fraction(&self) -> f64 {
        if self.text_words_before == 0 {
            0.0
        } else {
            (self.text_words_after - self.text_words_before) as f64 / self.text_words_before as f64
        }
    }
}

/// A protected program: the rewritten/encrypted image plus the hardware
/// configuration that must be provisioned alongside it.
#[derive(Debug, Clone, PartialEq)]
pub struct Protected {
    /// The shipped binary.
    pub image: Image,
    /// The secure monitor's configuration.
    pub secmon: SecMonConfig,
    /// Build report.
    pub report: ProtectReport,
}

impl Protected {
    /// Builds a ready-to-run machine (image + provisioned monitor).
    ///
    /// # Panics
    ///
    /// Panics if a cache geometry in `config` is invalid.
    pub fn machine(&self, config: SimConfig) -> Machine<SecMon> {
        Machine::with_monitor(&self.image, config, SecMon::new(self.secmon.clone()))
    }

    /// Like [`Protected::machine`] but with the observability sink
    /// attached to both the CPU and the secure monitor, so one recorder
    /// sees the full fetch/decrypt/guard event stream.
    ///
    /// # Panics
    ///
    /// Panics if a cache geometry in `config` is invalid.
    pub fn machine_traced(&self, config: SimConfig, sink: &SharedSink) -> Machine<SecMon> {
        let mut monitor = SecMon::new(self.secmon.clone());
        monitor.attach_sink(sink.clone());
        let mut machine = Machine::with_monitor(&self.image, config, monitor);
        machine.attach_sink(sink.clone());
        machine
    }

    /// Re-arms an existing machine to run this protected program, reusing
    /// its cache and memory allocations instead of building a new machine.
    ///
    /// The monitor is re-provisioned from this binary's [`SecMonConfig`]
    /// (the secure monitor carries per-run state), and the machine's sink
    /// is cleared — reattach one afterwards for a traced run. The batch
    /// harnesses use this to amortize allocations across many trials.
    ///
    /// When the machine's previous monitor used the same encryption
    /// regions — the attack harness's case: thousands of single-word
    /// mutations of one protected binary — the machine's decoded-line
    /// store is retained and revalidated against memory at fill time, so
    /// each trial re-decrypts only the lines the mutation touched. A
    /// different region table (different keys or layout) forces a full
    /// reset: identical ciphertext bytes would otherwise replay a stale
    /// decrypt.
    pub fn rearm(&self, machine: &mut Machine<SecMon>) {
        let monitor = SecMon::new(self.secmon.clone());
        if machine.monitor().config().regions == self.secmon.regions {
            machine.rearm(&self.image, monitor);
        } else {
            machine.reset_with_monitor(&self.image, monitor);
        }
    }

    /// The static tamper-surface map of the shipped image: per-word guard
    /// coverage plus the ranked list of words no rolling-MAC window or
    /// cipher region covers (see `flexprot-verify`).
    pub fn surface_map(&self) -> flexprot_verify::SurfaceMap {
        flexprot_verify::surface(&self.image, &self.secmon)
    }

    /// Translation-validates the shipped image against its baseline:
    /// alignment modulo guard insertion, guard-window transparency, and
    /// cipher round-trip identity (see `flexprot-verify`'s `equiv` module).
    pub fn validate_against(&self, base: &Image) -> flexprot_verify::EquivReport {
        flexprot_verify::equiv::validate(base, &self.image, &self.secmon)
    }

    /// The who-checks-whom guard network of the shipped image, plus the
    /// abstract-interpretation checksum proof for every guard window (see
    /// `flexprot-verify`'s `guardnet`/`absint` modules).
    pub fn guard_net(&self) -> (flexprot_verify::GuardNet, Vec<flexprot_verify::GuardProof>) {
        let v = flexprot_verify::analyze(
            &self.image,
            &self.secmon,
            &flexprot_verify::LintPolicy::default(),
        );
        (v.guardnet, v.proofs)
    }

    /// Runs the protected program to completion.
    pub fn run(&self, config: SimConfig) -> RunResult {
        self.machine(config).run()
    }

    /// Runs to completion with the observability sink attached.
    pub fn run_traced(&self, config: SimConfig, sink: &SharedSink) -> RunResult {
        self.machine_traced(config, sink).run()
    }

    /// Recovers a watermark of `payload_len` bytes from the shipped image
    /// (decrypting the text through the monitor's region table first).
    ///
    /// Returns `None` when no guard schedule is present or the image lacks
    /// the guard sites.
    pub fn extract_watermark(&self, payload_len: usize) -> Option<Vec<u8>> {
        let mut plaintext = self.image.clone();
        for index in 0..plaintext.text.len() {
            let addr = plaintext.addr_of_index(index);
            plaintext.text[index] = self.secmon.regions.apply(addr, plaintext.text[index]);
        }
        watermark::extract(&plaintext, &self.secmon, payload_len)
    }
}

/// Applies the configured protection layers to `image`.
///
/// # Errors
///
/// Propagates pass failures: CFG recovery, missing relocations, relocation
/// overflow or bad parameters.
pub fn protect(
    image: &Image,
    config: &ProtectionConfig,
    profile: Option<&Profile>,
) -> Result<Protected, ProtectError> {
    protect_traced(image, config, profile, None)
}

/// [`protect`] with an observability sink: each inserted guard site and
/// each embedded watermark payload is reported as a build-time event.
///
/// # Errors
///
/// Same failure modes as [`protect`].
pub fn protect_traced(
    image: &Image,
    config: &ProtectionConfig,
    profile: Option<&Profile>,
    sink: Option<&SharedSink>,
) -> Result<Protected, ProtectError> {
    let text_words_before = image.text.len();
    let mut secmon = SecMonConfig::transparent();
    secmon.halt_on_tamper = config.halt_on_tamper;

    let mut current = image.clone();
    let mut guards_inserted = 0;
    if let Some(guard_config) = &config.guards {
        let outcome = insert_guards(&current, guard_config, profile)?;
        guards_inserted = outcome.guards_inserted;
        secmon.guard_key = outcome.key;
        secmon.sites = outcome.sites;
        secmon.window_starts = outcome.window_starts;
        secmon.protected = outcome.protected;
        secmon.reset_points = outcome.reset_points;
        secmon.spacing_bound = outcome.spacing_bound;
        current = outcome.image;
        if let Some(sink) = sink {
            for site in secmon.sites.keys() {
                sink.emit(&TraceEvent::GuardInsert { site: *site });
            }
        }
    }
    if let Some(payload) = &config.watermark {
        if config.guards.is_none() {
            return Err(ProtectError::BadConfig(
                "watermarking requires the guard layer".into(),
            ));
        }
        watermark::embed(&mut current, &secmon, payload)?;
        if let Some(sink) = sink {
            sink.emit(&TraceEvent::Watermark {
                bytes: payload.len() as u32,
            });
        }
    }

    let mut encrypted_regions = 0;
    if let Some(enc_config) = &config.encryption {
        let outcome = encrypt_text(&current, enc_config)?;
        encrypted_regions = outcome.regions.regions().len();
        secmon.regions = outcome.regions;
        secmon.decrypt = outcome.model;
        current = outcome.image;
    }

    let report = ProtectReport {
        guards_inserted,
        text_words_before,
        text_words_after: current.text.len(),
        encrypted_regions,
        spacing_bound: secmon.spacing_bound,
    };
    let protected = Protected {
        image: current,
        secmon,
        report,
    };

    // N-version self-check: the independent verifier must be able to prove
    // every invariant this pipeline claims to have established. Refusing to
    // ship an unprovable image turns silent rewriting bugs into build
    // failures.
    let verdict = flexprot_verify::verify(&protected.image, &protected.secmon);
    if !verdict.is_clean() {
        let errors = verdict.count(flexprot_verify::Severity::Error);
        let first = verdict
            .findings
            .iter()
            .find(|f| f.severity == flexprot_verify::Severity::Error)
            .map(|f| f.to_string())
            .unwrap_or_default();
        return Err(ProtectError::VerificationFailed { errors, first });
    }

    // Optional key-flow post-condition: forward taint from the cipher-key
    // material (every in-region ciphertext read) must not reach an
    // observable sink. A leak here means the protected program itself
    // re-publishes what the encryption layer was meant to hide.
    if config.key_flow_check {
        let v = flexprot_verify::analyze_with_options(
            &protected.image,
            &protected.secmon,
            &flexprot_verify::LintPolicy::default(),
            true,
        );
        let leaks: Vec<&flexprot_verify::Finding> = v
            .report
            .findings
            .iter()
            .filter(|f| {
                f.severity == flexprot_verify::Severity::Error
                    && (f.id == "FP901" || f.id == "FP902")
            })
            .collect();
        if let Some(first) = leaks.first() {
            return Err(ProtectError::KeyFlowLeak {
                errors: leaks.len(),
                witness: first.addr,
                first: first.to_string(),
            });
        }
    }

    // Optional stronger self-check: translation validation proves the
    // transform semantics-preserving (guard windows architecturally inert,
    // ciphertext round-trips to the baseline stream), not merely that the
    // shipped image satisfies the protection invariants.
    if config.validate_translation {
        let equiv = protected.validate_against(image);
        match equiv.verdict {
            flexprot_verify::EquivVerdict::Proven => {}
            flexprot_verify::EquivVerdict::Inequivalent { witness_addr } => {
                return Err(ProtectError::TranslationUnproven {
                    verdict: "inequivalent",
                    witness: Some(witness_addr),
                    first: equiv
                        .findings
                        .iter()
                        .find(|f| f.severity == flexprot_verify::Severity::Error)
                        .map(|f| f.to_string())
                        .unwrap_or_default(),
                });
            }
            flexprot_verify::EquivVerdict::Refused { reason } => {
                return Err(ProtectError::TranslationUnproven {
                    verdict: "refused",
                    witness: None,
                    first: reason.to_string(),
                });
            }
        }
    }
    Ok(protected)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexprot_sim::Outcome;

    const SRC: &str = r#"
        .data
tab:    .word 3, 1, 4, 1, 5, 9, 2, 6
        .text
main:   la   $s0, tab
        li   $s1, 8
        li   $s2, 0
loop:   lw   $t0, 0($s0)
        jal  fold
        addi $s0, $s0, 4
        addi $s1, $s1, -1
        bgtz $s1, loop
        move $a0, $s2
        li   $v0, 1
        syscall
        li   $v0, 10
        syscall
fold:   mul  $t1, $t0, $t0
        addu $s2, $s2, $t1
        jr   $ra
"#;

    fn baseline() -> (Image, RunResult) {
        let image = flexprot_asm::assemble_or_panic(SRC);
        let r = Machine::new(&image, SimConfig::default()).run();
        assert_eq!(r.outcome, Outcome::Exit(0));
        (image, r)
    }

    #[test]
    fn empty_config_is_transparent() {
        let (image, base) = baseline();
        let protected = protect(&image, &ProtectionConfig::new(), None).unwrap();
        assert_eq!(protected.image.text, image.text);
        let r = protected.run(SimConfig::default());
        assert_eq!(r.output, base.output);
        assert_eq!(r.stats.cycles, base.stats.cycles);
        assert_eq!(protected.report.size_overhead_fraction(), 0.0);
    }

    #[test]
    fn guards_only_pipeline() {
        let (image, base) = baseline();
        let config = ProtectionConfig::new().with_guards(GuardConfig::with_density(0.5));
        let protected = protect(&image, &config, None).unwrap();
        assert!(protected.report.guards_inserted > 0);
        assert_eq!(protected.report.encrypted_regions, 0);
        let r = protected.run(SimConfig::default());
        assert_eq!(r.outcome, Outcome::Exit(0));
        assert_eq!(r.output, base.output);
        assert!(r.stats.cycles > base.stats.cycles);
    }

    #[test]
    fn encryption_only_pipeline() {
        let (image, base) = baseline();
        let config = ProtectionConfig::new().with_encryption(EncryptConfig::whole_program(0xFACE));
        let protected = protect(&image, &config, None).unwrap();
        assert_eq!(protected.report.guards_inserted, 0);
        assert_eq!(protected.report.encrypted_regions, 1);
        let r = protected.run(SimConfig::default());
        assert_eq!(r.outcome, Outcome::Exit(0));
        assert_eq!(r.output, base.output);
        assert!(r.stats.monitor_fill_cycles > 0);
    }

    #[test]
    fn guard_net_proves_every_emitted_constant() {
        let (image, _) = baseline();
        let config = ProtectionConfig::new().with_guards(GuardConfig::with_density(1.0));
        let protected = protect(&image, &config, None).unwrap();
        let (net, proofs) = protected.guard_net();
        assert_eq!(proofs.len(), protected.report.guards_inserted);
        // The emitter keeps hash windows disjoint, so the who-checks-whom
        // digraph of its output is edgeless — the verifier reports that
        // honestly rather than inventing edges.
        assert_eq!(net.edges, 0);
        assert!(
            proofs
                .iter()
                .all(|p| matches!(p.verdict, flexprot_verify::Verdict::Proven { .. })),
            "every untampered guard constant must be provable: {proofs:?}"
        );
    }

    #[test]
    fn combined_pipeline_runs_and_costs_more() {
        let (image, base) = baseline();
        let config = ProtectionConfig::new()
            .with_guards(GuardConfig::with_density(1.0))
            .with_encryption(EncryptConfig::whole_program(0xFACE));
        let protected = protect(&image, &config, None).unwrap();
        let r = protected.run(SimConfig::default());
        assert_eq!(r.outcome, Outcome::Exit(0));
        assert_eq!(r.output, base.output);
        assert!(r.stats.cycles > base.stats.cycles);
        assert!(protected.report.size_overhead_fraction() > 0.0);
    }

    #[test]
    fn translation_validation_self_check_ships_clean_output() {
        let (image, _) = baseline();
        let config = ProtectionConfig::new()
            .with_guards(GuardConfig::with_density(1.0))
            .with_encryption(EncryptConfig::whole_program(0xFACE))
            .with_translation_validation();
        let protected = protect(&image, &config, None).unwrap();
        // And the convenience accessor reproduces the proof on demand.
        let report = protected.validate_against(&image);
        assert_eq!(report.verdict, flexprot_verify::EquivVerdict::Proven);
        assert!(report.refusals.is_empty());
    }

    #[test]
    fn combined_pipeline_detects_ciphertext_tamper() {
        let (image, _) = baseline();
        let config = ProtectionConfig::new()
            .with_guards(GuardConfig::with_density(1.0))
            .with_encryption(EncryptConfig::whole_program(0xFACE));
        let mut protected = protect(&image, &config, None).unwrap();
        // Flip one ciphertext bit: post-decrypt garbage must be caught by a
        // guard, a decode fault or wild control flow — never a clean exit
        // with wrong output going unnoticed by *hardware* (output equality
        // is checked separately in the attack harness).
        protected.image.text[2] ^= 1 << 20;
        let limited = SimConfig {
            max_instructions: 1_000_000,
            ..SimConfig::default()
        };
        let r = protected.run(limited);
        assert_ne!(r.outcome, Outcome::Exit(0));
    }

    #[test]
    fn traced_pipeline_reports_build_and_run_events() {
        let (image, base) = baseline();
        let config = ProtectionConfig::new()
            .with_guards(GuardConfig::with_density(1.0))
            .with_encryption(EncryptConfig::whole_program(0xFACE))
            .with_watermark(*b"WM");
        let (sink, recorder) = flexprot_trace::Recorder::new().shared();
        let protected = protect_traced(&image, &config, None, Some(&sink)).unwrap();
        {
            let recorder = recorder.borrow();
            let m = recorder.metrics();
            assert_eq!(
                m.counter("guard_sites_inserted"),
                protected.report.guards_inserted as u64
            );
            assert_eq!(m.counter("watermark_bytes"), 2);
        }

        let r = protected.run_traced(SimConfig::default(), &sink);
        assert_eq!(r.outcome, Outcome::Exit(0));
        assert_eq!(r.output, base.output);
        let recorder = recorder.borrow();
        let m = recorder.metrics();
        // One recorder saw the whole story: build events, guard checks and
        // the simulator's authoritative end-of-run counters.
        assert!(m.counter("guard_checks_passed") > 0);
        assert!(m.counter("guard_sites_passed") <= m.counter("guard_sites_inserted"));
        assert_eq!(m.counter("sim_cycles"), r.stats.cycles);
        assert_eq!(m.counter("instructions_committed"), r.stats.instructions);
        assert!(m.counter("decrypt_unit_cycles") > 0);
        assert_eq!(
            m.counter("decrypt_stall_cycles"),
            r.stats.monitor_fill_cycles
        );
    }

    #[test]
    fn untraced_protect_matches_traced_protect() {
        let (image, _) = baseline();
        let config = ProtectionConfig::new()
            .with_guards(GuardConfig::with_density(0.5))
            .with_encryption(EncryptConfig::whole_program(0xBEEF));
        let (sink, _recorder) = flexprot_trace::Recorder::new().shared();
        let plain = protect(&image, &config, None).unwrap();
        let traced = protect_traced(&image, &config, None, Some(&sink)).unwrap();
        assert_eq!(plain, traced);
    }

    #[test]
    fn rearmed_machine_matches_fresh_machine() {
        let (image, _) = baseline();
        let guarded = protect(
            &image,
            &ProtectionConfig::new().with_guards(GuardConfig::with_density(1.0)),
            None,
        )
        .unwrap();
        let encrypted = protect(
            &image,
            &ProtectionConfig::new().with_encryption(EncryptConfig::whole_program(0xFACE)),
            None,
        )
        .unwrap();
        let fresh_guarded = guarded.run(SimConfig::default());
        let fresh_encrypted = encrypted.run(SimConfig::default());
        let mut machine = guarded.machine(SimConfig::default());
        machine.run();
        encrypted.rearm(&mut machine);
        assert_eq!(machine.run(), fresh_encrypted);
        guarded.rearm(&mut machine);
        assert_eq!(machine.run(), fresh_guarded);
    }

    #[test]
    fn from_plan_builds_scoped_config() {
        use crate::optimize::{FunctionPlan, Plan};
        let mut plan = Plan::default();
        plan.functions.insert(
            "fold".to_owned(),
            FunctionPlan {
                guard_density: 1.0,
                encrypt: true,
            },
        );
        let config = ProtectionConfig::from_plan(
            &plan,
            GuardConfig::with_density(0.0),
            EncryptConfig::whole_program(0xFACE),
        );
        let (image, base) = baseline();
        let protected = protect(&image, &config, None).unwrap();
        assert!(protected.report.guards_inserted >= 1);
        assert!(protected.report.encrypted_regions >= 1);
        let r = protected.run(SimConfig::default());
        assert_eq!(r.outcome, Outcome::Exit(0));
        assert_eq!(r.output, base.output);
    }

    #[test]
    fn empty_plan_yields_empty_config() {
        let plan = Plan::default();
        let config = ProtectionConfig::from_plan(
            &plan,
            GuardConfig::with_density(0.0),
            EncryptConfig::whole_program(1),
        );
        assert!(config.guards.is_none());
        assert!(config.encryption.is_none());
    }
}

#[cfg(test)]
mod watermark_pipeline_tests {
    use super::*;
    use flexprot_sim::Outcome;

    const SRC: &str = r#"
main:   li   $t0, 9
loop:   addi $t0, $t0, -1
        bgtz $t0, loop
        li   $v0, 10
        syscall
"#;

    #[test]
    fn watermark_survives_guards_and_encryption() {
        let image = flexprot_asm::assemble_or_panic(SRC);
        let config = ProtectionConfig::new()
            .with_guards(GuardConfig::with_density(1.0))
            .with_encryption(EncryptConfig::whole_program(0xABCD))
            .with_watermark(*b"ID7");
        let protected = protect(&image, &config, None).unwrap();
        // The shipped binary runs clean...
        let run = protected.run(SimConfig::default());
        assert_eq!(run.outcome, Outcome::Exit(0));
        // ...and the payload is recoverable through the decryption table.
        assert_eq!(protected.extract_watermark(3).as_deref(), Some(&b"ID7"[..]));
    }

    #[test]
    fn watermark_without_guards_is_rejected() {
        let image = flexprot_asm::assemble_or_panic(SRC);
        let config = ProtectionConfig::new().with_watermark(*b"X");
        assert!(matches!(
            protect(&image, &config, None),
            Err(ProtectError::BadConfig(_))
        ));
    }

    #[test]
    fn oversized_watermark_is_rejected() {
        let image = flexprot_asm::assemble_or_panic(SRC);
        let config = ProtectionConfig::new()
            .with_guards(GuardConfig::with_density(1.0))
            .with_watermark(vec![0xAA; 10_000]);
        assert!(matches!(
            protect(&image, &config, None),
            Err(ProtectError::BadConfig(_))
        ));
    }
}
