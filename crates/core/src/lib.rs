//! Flexible software protection via hardware/software codesign — the
//! software (toolchain) half.
//!
//! This crate implements the protection passes that the DATE-2004 approach
//! runs over compiled binaries, producing both a hardened binary and the
//! configuration for the FPGA secure monitor (`flexprot-secmon`):
//!
//! * [`mod@cfg`] — control-flow-graph recovery from program images;
//! * [`profile`] — baseline execution profiles (the codesign feedback loop);
//! * [`place`] — guard placement policies (uniform / random / coldest-first
//!   / loop-headers);
//! * [`guards`] — register-guard insertion: binary rewriting with full
//!   relocation fix-up, window signing, spacing-bound derivation;
//! * [`encrypt`] — instruction-stream encryption at program / function /
//!   block keying granularity;
//! * [`mod@estimate`] — static overhead prediction from profiles;
//! * [`mod@optimize`] — the profile-guided budget optimizer that makes the
//!   protection *flexible*: per-function protection levels chosen to fit an
//!   overhead budget;
//! * [`pipeline`] — the end-to-end [`protect`] entry point.
//!
//! # Example
//!
//! ```
//! use flexprot_core::{protect, GuardConfig, ProtectionConfig};
//! use flexprot_sim::{Outcome, SimConfig};
//!
//! let image = flexprot_asm::assemble(r#"
//! main:   li   $t0, 3
//!         mul  $a0, $t0, $t0
//!         li   $v0, 1
//!         syscall
//!         li   $v0, 10
//!         syscall
//! "#)?;
//! let config = ProtectionConfig::new().with_guards(GuardConfig::with_density(1.0));
//! let protected = protect(&image, &config, None)?;
//! let result = protected.run(SimConfig::default());
//! assert_eq!(result.outcome, Outcome::Exit(0));
//! assert_eq!(result.output, "9");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod cfg;
pub mod encrypt;
pub mod error;
pub mod estimate;
pub mod guards;
pub mod optimize;
pub mod pipeline;
pub mod place;
pub mod profile;
pub mod watermark;

pub use cfg::{Block, Cfg, Function, Terminator};
pub use encrypt::{encrypt_text, EncryptConfig, EncryptOutcome, Granularity};
pub use error::ProtectError;
pub use estimate::{estimate, OverheadEstimate};
pub use guards::{insert_guards, select_guard_blocks, GuardConfig, GuardOutcome, Selection};
pub use optimize::{optimize, FunctionPlan, OptimizerConfig, Plan};
pub use pipeline::{protect, protect_traced, ProtectReport, Protected, ProtectionConfig};
pub use place::Placement;
pub use profile::Profile;
