//! Control-flow-graph recovery from a program image.
//!
//! The protection passes are binary passes: they see an [`Image`], not
//! source. CFG recovery finds basic-block leaders (the entry, every
//! branch/jump target, and every instruction following a control transfer —
//! calls included, because the secure monitor's hash window must be
//! straight-line), builds intra-procedural edges, groups blocks into
//! functions, and marks loop headers (targets of back edges).
//!
//! Recovery is *strict*: undecodable words or control transfers into the
//! middle of nowhere are errors, because rewriting such a binary safely is
//! impossible. This mirrors the codesign assumption that the protection
//! tool runs on toolchain-produced binaries with relocation metadata
//! intact.

use std::collections::{BTreeMap, BTreeSet};

use flexprot_isa::{Image, Inst};

use crate::error::ProtectError;

/// How a basic block ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Terminator {
    /// Control continues to the next sequential block.
    FallThrough,
    /// Conditional branch: taken target + fall-through.
    Branch { target: u32 },
    /// Unconditional direct jump.
    Jump { target: u32 },
    /// Direct call; control returns to the fall-through block.
    Call { target: u32 },
    /// Indirect jump (`jr`) — typically a return.
    IndirectJump,
    /// Indirect call (`jalr`).
    IndirectCall,
    /// `syscall` or `break`. Ends a block so that a guard can sit *before*
    /// it: an exit syscall must not escape the protected block before its
    /// signature is checked.
    System,
    /// The block ends because the next word is a leader.
    None,
}

/// One basic block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// Word index of the leader within the text segment.
    pub start: usize,
    /// Length in words (≥ 1).
    pub len: usize,
    /// How the block ends.
    pub terminator: Terminator,
    /// Indices of intra-procedural successor blocks.
    pub succs: Vec<usize>,
    /// Whether some successor edge into this block is a back edge.
    pub is_loop_header: bool,
    /// Index of the owning function.
    pub func: usize,
}

impl Block {
    /// Number of body words, i.e. words before the terminating control
    /// transfer (the whole block when it ends by fall-through/leader).
    pub fn body_len(&self) -> usize {
        match self.terminator {
            Terminator::FallThrough | Terminator::None => self.len,
            _ => self.len - 1,
        }
    }
}

/// One recovered function: a contiguous range of blocks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Function {
    /// Entry address.
    pub entry: u32,
    /// One past the last byte of the function.
    pub end: u32,
    /// Symbol name, when the symbol table has one for the entry.
    pub name: Option<String>,
    /// Indices of the function's blocks, in address order.
    pub blocks: Vec<usize>,
}

/// The recovered control-flow graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cfg {
    /// Blocks in address order.
    pub blocks: Vec<Block>,
    /// Functions in address order.
    pub functions: Vec<Function>,
}

impl Cfg {
    /// Recovers the CFG of `image`.
    ///
    /// # Errors
    ///
    /// Fails when a text word does not decode or a direct control transfer
    /// targets an invalid address.
    pub fn recover(image: &Image) -> Result<Cfg, ProtectError> {
        let insts = decode_all(image)?;
        let leaders = find_leaders(image, &insts)?;
        let blocks = build_blocks(image, &insts, &leaders);
        let functions = find_functions(image, &insts, &blocks);
        let mut cfg = Cfg { blocks, functions };
        cfg.assign_functions(image);
        cfg.link_edges(image);
        cfg.mark_loop_headers();
        Ok(cfg)
    }

    /// The block whose range contains `addr`, if any.
    pub fn block_at(&self, image: &Image, addr: u32) -> Option<&Block> {
        let index = image.text_index_of(addr)?;
        let pos = self.blocks.partition_point(|b| b.start + b.len <= index);
        self.blocks
            .get(pos)
            .filter(|b| b.start <= index && index < b.start + b.len)
    }

    /// Total number of instructions across all blocks.
    pub fn instruction_count(&self) -> usize {
        self.blocks.iter().map(|b| b.len).sum()
    }

    fn assign_functions(&mut self, image: &Image) {
        for (bi, block) in self.blocks.iter_mut().enumerate() {
            let addr = image.addr_of_index(block.start);
            let fi = self
                .functions
                .partition_point(|f| f.entry <= addr)
                .saturating_sub(1);
            block.func = fi;
            self.functions[fi].blocks.push(bi);
        }
        for (fi, func) in self.functions.iter_mut().enumerate() {
            debug_assert!(func.blocks.iter().all(|&b| self.blocks[b].func == fi));
        }
    }

    fn link_edges(&mut self, image: &Image) {
        let starts: Vec<usize> = self.blocks.iter().map(|b| b.start).collect();
        let block_of_index =
            |index: usize| -> usize { starts.partition_point(|&s| s <= index) - 1 };
        for bi in 0..self.blocks.len() {
            let block = &self.blocks[bi];
            let next = bi + 1;
            let mut succs = Vec::new();
            match block.terminator {
                Terminator::FallThrough | Terminator::None => {
                    if next < self.blocks.len() {
                        succs.push(next);
                    }
                }
                Terminator::Branch { target } => {
                    if let Some(ti) = image.text_index_of(target) {
                        succs.push(block_of_index(ti));
                    }
                    if next < self.blocks.len() {
                        succs.push(next);
                    }
                }
                Terminator::Jump { target } => {
                    if let Some(ti) = image.text_index_of(target) {
                        succs.push(block_of_index(ti));
                    }
                }
                // Calls and syscalls: intra-procedural edge to the return
                // point only (an exit syscall simply never takes it).
                Terminator::Call { .. } | Terminator::IndirectCall | Terminator::System => {
                    if next < self.blocks.len() {
                        succs.push(next);
                    }
                }
                // Returns / computed jumps: no static successors.
                Terminator::IndirectJump => {}
            }
            succs.dedup();
            self.blocks[bi].succs = succs;
        }
    }

    fn mark_loop_headers(&mut self) {
        // Approximation suited to toolchain-generated code: an edge whose
        // target does not lie at a higher address than its source is a back
        // edge.
        let mut headers = BTreeSet::new();
        for (bi, block) in self.blocks.iter().enumerate() {
            for &succ in &block.succs {
                if self.blocks[succ].start <= block.start {
                    headers.insert(succ);
                }
            }
            let _ = bi;
        }
        for &h in &headers {
            self.blocks[h].is_loop_header = true;
        }
    }
}

fn decode_all(image: &Image) -> Result<Vec<Inst>, ProtectError> {
    image
        .decode_text()
        .map(|(addr, decoded)| {
            decoded.map_err(|_| ProtectError::UndecodableText {
                addr,
                word: image.text[image.text_index_of(addr).expect("in range")],
            })
        })
        .collect()
}

fn find_leaders(image: &Image, insts: &[Inst]) -> Result<BTreeSet<usize>, ProtectError> {
    let mut leaders = BTreeSet::new();
    if insts.is_empty() {
        return Ok(leaders);
    }
    // First word, entry point and in-text symbols — the semantic-free
    // leader set shared with `flexprot-verify`'s block partitioning.
    leaders.extend(image.anchor_indices());
    for (i, inst) in insts.iter().enumerate() {
        let addr = image.addr_of_index(i);
        let target = inst.branch_target(addr).or_else(|| inst.jump_target());
        if let Some(target) = target {
            let ti = image
                .text_index_of(target)
                .ok_or(ProtectError::BadControlTarget { addr, target })?;
            leaders.insert(ti);
        }
        if inst.is_control_transfer() && i + 1 < insts.len() {
            leaders.insert(i + 1);
        }
    }
    Ok(leaders)
}

fn build_blocks(image: &Image, insts: &[Inst], leaders: &BTreeSet<usize>) -> Vec<Block> {
    let leader_list: Vec<usize> = leaders.iter().copied().collect();
    let mut blocks = Vec::with_capacity(leader_list.len());
    for (li, &start) in leader_list.iter().enumerate() {
        let end = leader_list.get(li + 1).copied().unwrap_or(insts.len());
        let len = end - start;
        debug_assert!(len >= 1);
        let last = insts[end - 1];
        let last_addr = image.addr_of_index(end - 1);
        let terminator = match last {
            Inst::J { .. } => Terminator::Jump {
                target: last.jump_target().expect("jump has target"),
            },
            Inst::Jal { .. } => Terminator::Call {
                target: last.jump_target().expect("call has target"),
            },
            Inst::Jr { .. } => Terminator::IndirectJump,
            Inst::Jalr { .. } => Terminator::IndirectCall,
            Inst::Syscall | Inst::Break => Terminator::System,
            // `beq $r, $r, target` (the assembler's `b`) is unconditional.
            Inst::Beq { rs, rt, .. } if rs == rt => Terminator::Jump {
                target: last.branch_target(last_addr).expect("branch has target"),
            },
            _ if last.is_branch() => Terminator::Branch {
                target: last.branch_target(last_addr).expect("branch has target"),
            },
            _ => Terminator::None,
        };
        blocks.push(Block {
            start,
            len,
            terminator,
            succs: Vec::new(),
            is_loop_header: false,
            func: 0,
        });
    }
    blocks
}

fn find_functions(image: &Image, insts: &[Inst], blocks: &[Block]) -> Vec<Function> {
    let mut entries: BTreeSet<u32> = BTreeSet::new();
    entries.insert(image.text_base);
    entries.insert(image.entry);
    for inst in insts {
        if let Inst::Jal { target } = inst {
            let addr = target << 2;
            if image.contains_text_addr(addr) {
                entries.insert(addr);
            }
        }
    }
    let _ = blocks;
    let mut names: BTreeMap<u32, String> = BTreeMap::new();
    for (name, &addr) in &image.symbols {
        names.entry(addr).or_insert_with(|| name.clone());
    }
    let entry_list: Vec<u32> = entries.iter().copied().collect();
    entry_list
        .iter()
        .enumerate()
        .map(|(i, &entry)| Function {
            entry,
            end: entry_list.get(i + 1).copied().unwrap_or(image.text_end()),
            name: names.get(&entry).cloned(),
            blocks: Vec::new(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg_of(src: &str) -> (Image, Cfg) {
        let image = flexprot_asm::assemble_or_panic(src);
        let cfg = Cfg::recover(&image).expect("recovery");
        (image, cfg)
    }

    #[test]
    fn straight_line_is_one_block() {
        let (_, cfg) = cfg_of("main: li $t0, 1\n li $t1, 2\n addu $t2, $t0, $t1\n syscall\n");
        assert_eq!(cfg.blocks.len(), 1);
        assert_eq!(cfg.blocks[0].len, 4);
        assert_eq!(cfg.blocks[0].terminator, Terminator::System);
        assert_eq!(cfg.blocks[0].body_len(), 3);
        assert_eq!(cfg.functions.len(), 1);
    }

    #[test]
    fn branch_splits_blocks_and_links_edges() {
        let (_, cfg) = cfg_of(
            r#"
main:   beq $t0, $t1, yes
        li  $t2, 1
        b   end
yes:    li  $t2, 2
end:    syscall
"#,
        );
        // Blocks: [beq], [li;b], [yes: li], [end: syscall]
        assert_eq!(cfg.blocks.len(), 4);
        assert!(matches!(
            cfg.blocks[0].terminator,
            Terminator::Branch { .. }
        ));
        assert_eq!(cfg.blocks[0].succs, vec![2, 1]);
        assert_eq!(cfg.blocks[1].succs, vec![3]); // b end
        assert_eq!(cfg.blocks[2].succs, vec![3]);
        assert!(cfg.blocks[3].succs.is_empty());
    }

    #[test]
    fn call_ends_block_with_fallthrough_edge() {
        let (_, cfg) = cfg_of(
            r#"
main:   li  $a0, 1
        jal f
        li  $v0, 10
        syscall
f:      jr  $ra
"#,
        );
        // Blocks: [li;jal], [li;syscall], [f: jr]
        assert_eq!(cfg.blocks.len(), 3);
        assert!(matches!(cfg.blocks[0].terminator, Terminator::Call { .. }));
        assert_eq!(cfg.blocks[0].succs, vec![1]);
        assert_eq!(cfg.blocks[2].terminator, Terminator::IndirectJump);
        assert!(cfg.blocks[2].succs.is_empty());
    }

    #[test]
    fn functions_are_split_at_jal_targets() {
        let (image, cfg) = cfg_of(
            r#"
main:   jal f
        jal g
        syscall
f:      jr  $ra
g:      jr  $ra
"#,
        );
        assert_eq!(cfg.functions.len(), 3);
        assert_eq!(cfg.functions[0].name.as_deref(), Some("main"));
        assert_eq!(cfg.functions[1].name.as_deref(), Some("f"));
        assert_eq!(cfg.functions[2].name.as_deref(), Some("g"));
        assert_eq!(cfg.functions[1].entry, image.symbol("f").unwrap());
        // Every block belongs to the right function.
        for (fi, func) in cfg.functions.iter().enumerate() {
            for &bi in &func.blocks {
                assert_eq!(cfg.blocks[bi].func, fi);
                let addr = image.addr_of_index(cfg.blocks[bi].start);
                assert!(addr >= func.entry && addr < func.end);
            }
        }
    }

    #[test]
    fn loop_header_is_marked() {
        let (_, cfg) = cfg_of(
            r#"
main:   li   $t0, 10
loop:   addi $t0, $t0, -1
        bgtz $t0, loop
        syscall
"#,
        );
        let headers: Vec<usize> = cfg
            .blocks
            .iter()
            .enumerate()
            .filter(|(_, b)| b.is_loop_header)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(headers.len(), 1);
        // The loop body block starts at `loop`.
        assert_eq!(cfg.blocks[headers[0]].start, 1);
    }

    #[test]
    fn body_len_excludes_terminator() {
        let (_, cfg) = cfg_of(
            r#"
main:   li $t0, 1
        li $t1, 2
        b  main
"#,
        );
        assert_eq!(cfg.blocks[0].len, 3);
        assert_eq!(cfg.blocks[0].body_len(), 2);
    }

    #[test]
    fn block_at_looks_up_by_address() {
        let (image, cfg) = cfg_of("main: li $t0, 1\n b main\n");
        let b = cfg.block_at(&image, image.text_base + 4).unwrap();
        assert_eq!(b.start, 0);
        assert!(cfg.block_at(&image, image.text_end()).is_none());
    }

    #[test]
    fn undecodable_text_is_rejected() {
        let mut image = flexprot_asm::assemble_or_panic("main: nop\n");
        image.text.push(0xFFFF_FFFF);
        assert!(matches!(
            Cfg::recover(&image),
            Err(ProtectError::UndecodableText { .. })
        ));
    }

    #[test]
    fn wild_branch_target_is_rejected() {
        // A branch whose offset leaves the text segment.
        let image = Image::from_text(vec![
            Inst::Beq {
                rs: flexprot_isa::Reg::ZERO,
                rt: flexprot_isa::Reg::ZERO,
                off: 100,
            }
            .encode(),
            Inst::Syscall.encode(),
        ]);
        assert!(matches!(
            Cfg::recover(&image),
            Err(ProtectError::BadControlTarget { .. })
        ));
    }

    #[test]
    fn instruction_count_matches_text() {
        let (image, cfg) = cfg_of(
            r#"
main:   jal f
        syscall
f:      li $t0, 3
loop:   addi $t0, $t0, -1
        bgtz $t0, loop
        jr $ra
"#,
        );
        assert_eq!(cfg.instruction_count(), image.text.len());
    }
}
