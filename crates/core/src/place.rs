//! Guard placement policies.
//!
//! Placement decides *which* basic blocks receive a guard, given a target
//! density (fraction of eligible blocks). The policy choice is one of the
//! ablation axes of the evaluation (experiment T4): uniform and random
//! placement are oblivious; cold-first placement uses the profile to keep
//! guards out of hot code; loop-header placement prioritises back-edge
//! targets so the guard-spacing bound stays finite.

use std::collections::BTreeSet;

use flexprot_isa::{Image, Rng64};

use crate::cfg::Cfg;
use crate::profile::Profile;

/// The placement policy for guard selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Every k-th eligible block, evenly spread in address order.
    Uniform,
    /// A uniformly random sample of eligible blocks (seeded).
    Random,
    /// The least-executed blocks first; requires a profile, falls back to
    /// address order without one.
    ColdestFirst,
    /// Loop headers first (keeping the spacing bound finite), then the
    /// remaining blocks in address order.
    LoopHeaders,
}

/// Whether a block can carry a guard.
///
/// Since guard signatures cover the post-guard terminator (the *tail*),
/// even a block consisting of a single branch forms a non-empty signed
/// window, so every block qualifies. The predicate is kept as the policy
/// hook for stricter future criteria.
pub fn is_eligible(cfg: &Cfg, block_index: usize) -> bool {
    cfg.blocks[block_index].len >= 1
}

/// Selects blocks of `function_blocks` (indices into `cfg.blocks`) to guard
/// at the given density.
///
/// Returns a set of block indices. `density` is clamped to `[0, 1]` and
/// interpreted as the fraction of *eligible* blocks to guard, rounded up —
/// so any positive density selects at least one block when one is eligible.
pub fn select_in(
    cfg: &Cfg,
    image: &Image,
    function_blocks: &[usize],
    density: f64,
    policy: Placement,
    profile: Option<&Profile>,
    seed: u64,
) -> BTreeSet<usize> {
    let eligible: Vec<usize> = function_blocks
        .iter()
        .copied()
        .filter(|&b| is_eligible(cfg, b))
        .collect();
    if eligible.is_empty() {
        return BTreeSet::new();
    }
    let density = density.clamp(0.0, 1.0);
    let want = ((eligible.len() as f64) * density).ceil() as usize;
    if want == 0 {
        return BTreeSet::new();
    }
    let chosen: Vec<usize> = match policy {
        Placement::Uniform => {
            // Evenly spread: pick indices at fractional stride.
            let stride = eligible.len() as f64 / want as f64;
            (0..want)
                .map(|i| eligible[((i as f64) * stride) as usize])
                .collect()
        }
        Placement::Random => {
            let mut rng = Rng64::new(seed);
            let mut pool = eligible.clone();
            rng.shuffle(&mut pool);
            pool.truncate(want);
            pool
        }
        Placement::ColdestFirst => {
            let mut pool = eligible.clone();
            if let Some(profile) = profile {
                pool.sort_by_key(|&b| profile.block_entries(image, &cfg.blocks[b]));
            }
            pool.truncate(want);
            pool
        }
        Placement::LoopHeaders => {
            let mut pool: Vec<usize> = eligible
                .iter()
                .copied()
                .filter(|&b| cfg.blocks[b].is_loop_header)
                .collect();
            pool.extend(
                eligible
                    .iter()
                    .copied()
                    .filter(|&b| !cfg.blocks[b].is_loop_header),
            );
            pool.truncate(want);
            pool
        }
    };
    chosen.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexprot_sim::SimConfig;

    fn sample() -> (Image, Cfg, Profile) {
        let image = flexprot_asm::assemble_or_panic(
            r#"
main:   li   $t0, 50
        li   $t1, 0
loop:   addi $t0, $t0, -1
        addu $t1, $t1, $t0
        bgtz $t0, loop
        li   $t2, 1
        li   $t3, 2
        beq  $t2, $t3, rare
after:  li   $v0, 10
        syscall
rare:   li   $t4, 9
        b    after
"#,
        );
        let cfg = Cfg::recover(&image).unwrap();
        let profile = Profile::collect_clean(&image, &SimConfig::default());
        (image, cfg, profile)
    }

    fn all_blocks(cfg: &Cfg) -> Vec<usize> {
        (0..cfg.blocks.len()).collect()
    }

    #[test]
    fn density_one_selects_all_eligible() {
        let (image, cfg, _) = sample();
        let sel = select_in(
            &cfg,
            &image,
            &all_blocks(&cfg),
            1.0,
            Placement::Uniform,
            None,
            0,
        );
        let eligible = all_blocks(&cfg)
            .into_iter()
            .filter(|&b| is_eligible(&cfg, b))
            .count();
        assert_eq!(sel.len(), eligible);
    }

    #[test]
    fn density_zero_selects_none() {
        let (image, cfg, _) = sample();
        let sel = select_in(
            &cfg,
            &image,
            &all_blocks(&cfg),
            0.0,
            Placement::Random,
            None,
            0,
        );
        assert!(sel.is_empty());
    }

    #[test]
    fn positive_density_selects_at_least_one() {
        let (image, cfg, _) = sample();
        let sel = select_in(
            &cfg,
            &image,
            &all_blocks(&cfg),
            0.01,
            Placement::Uniform,
            None,
            0,
        );
        assert_eq!(sel.len(), 1);
    }

    #[test]
    fn random_is_seed_deterministic() {
        let (image, cfg, _) = sample();
        let a = select_in(
            &cfg,
            &image,
            &all_blocks(&cfg),
            0.5,
            Placement::Random,
            None,
            7,
        );
        let b = select_in(
            &cfg,
            &image,
            &all_blocks(&cfg),
            0.5,
            Placement::Random,
            None,
            7,
        );
        let c = select_in(
            &cfg,
            &image,
            &all_blocks(&cfg),
            0.5,
            Placement::Random,
            None,
            8,
        );
        assert_eq!(a, b);
        // Different seeds usually differ; with few blocks allow equality
        // but the call must still succeed.
        let _ = c;
    }

    #[test]
    fn coldest_first_avoids_the_loop() {
        let (image, cfg, profile) = sample();
        let sel = select_in(
            &cfg,
            &image,
            &all_blocks(&cfg),
            0.25,
            Placement::ColdestFirst,
            Some(&profile),
            0,
        );
        for &b in &sel {
            assert!(
                profile.block_entries(&image, &cfg.blocks[b]) <= 1,
                "cold-first picked a hot block {b}"
            );
        }
    }

    #[test]
    fn loop_headers_policy_prioritises_headers() {
        let (image, cfg, _) = sample();
        let headers: Vec<usize> = (0..cfg.blocks.len())
            .filter(|&b| cfg.blocks[b].is_loop_header && is_eligible(&cfg, b))
            .collect();
        assert!(!headers.is_empty(), "sample must contain a loop");
        // Address-order back-edge detection is conservative: backwards merge
        // jumps also count as headers, so use a density that fits them all.
        let sel = select_in(
            &cfg,
            &image,
            &all_blocks(&cfg),
            0.5,
            Placement::LoopHeaders,
            None,
            0,
        );
        for &h in &headers {
            assert!(sel.contains(&h), "header {h} not selected");
        }
    }

    #[test]
    fn selection_respects_function_subset() {
        let (image, cfg, _) = sample();
        let subset = vec![0usize, 1];
        let sel = select_in(&cfg, &image, &subset, 1.0, Placement::Uniform, None, 0);
        assert!(sel.iter().all(|b| subset.contains(b)));
    }
}
