//! The profile-guided budget optimizer — the "flexible" in flexible
//! protection.
//!
//! Given an overhead budget (a fraction of baseline cycles), the optimizer
//! chooses a per-function protection level — guard density plus optional
//! encryption — that maximizes *coverage* (protected instructions) without
//! exceeding the budget. It is a greedy marginal-benefit knapsack: each
//! candidate upgrade is scored by protection value per estimated cycle, and
//! upgrades are applied best-first while they fit.
//!
//! Experiment F4 sweeps the budget to trace the protection/performance
//! Pareto frontier this produces.

use std::collections::{BTreeMap, BTreeSet};

use flexprot_isa::Image;
use flexprot_secmon::decrypt::DecryptModel;

use crate::cfg::Cfg;
use crate::estimate;
use crate::place::{self, Placement};
use crate::profile::Profile;

/// Chosen protection level for one function.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FunctionPlan {
    /// Guard density in `[0, 1]`.
    pub guard_density: f64,
    /// Whether the function's text is encrypted.
    pub encrypt: bool,
}

/// A budgeted protection plan.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Plan {
    /// Per-function levels, keyed by symbol name.
    pub functions: BTreeMap<String, FunctionPlan>,
    /// Estimated extra cycles of the whole plan.
    pub est_extra_cycles: u64,
    /// Coverage score in `[0, 1]` (see [`coverage`]).
    pub coverage: f64,
}

/// Optimizer parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimizerConfig {
    /// Allowed extra cycles as a fraction of baseline cycles (e.g. `0.10`).
    pub budget_fraction: f64,
    /// Guard-density steps offered per function, ascending.
    pub density_levels: Vec<f64>,
    /// Decrypt model used for encryption-cost estimation.
    pub decrypt_model: DecryptModel,
    /// I-cache line words (for fill penalties).
    pub line_words: u32,
    /// Placement policy assumed when estimating guard cost.
    pub placement: Placement,
    /// Selection seed (must match the one used to apply the plan).
    pub seed: u64,
}

impl Default for OptimizerConfig {
    fn default() -> OptimizerConfig {
        OptimizerConfig {
            budget_fraction: 0.10,
            density_levels: vec![0.25, 0.5, 1.0],
            decrypt_model: DecryptModel::baseline(),
            line_words: 8,
            placement: Placement::ColdestFirst,
            seed: 1,
        }
    }
}

/// Coverage of a plan: mean of guard coverage and encryption coverage,
/// weighted by static instruction counts.
pub fn coverage(plan: &Plan, cfg: &Cfg) -> f64 {
    let mut total = 0usize;
    let mut guarded = 0.0f64;
    let mut encrypted = 0usize;
    for func in &cfg.functions {
        let instrs: usize = func.blocks.iter().map(|&b| cfg.blocks[b].len).sum();
        total += instrs;
        if let Some(fp) = func.name.as_deref().and_then(|n| plan.functions.get(n)) {
            guarded += fp.guard_density * instrs as f64;
            if fp.encrypt {
                encrypted += instrs;
            }
        }
    }
    if total == 0 {
        0.0
    } else {
        (guarded / total as f64 + encrypted as f64 / total as f64) / 2.0
    }
}

#[derive(Debug, Clone)]
struct Upgrade {
    function: String,
    /// New density level index (None = encryption upgrade).
    to_level: Option<usize>,
    cost: u64,
    value: f64,
}

/// Runs the optimizer.
///
/// Functions without symbol names are skipped (a plan is expressed by
/// name). The returned plan's `est_extra_cycles` respects
/// `budget_fraction × profile.cycles`.
pub fn optimize(image: &Image, cfg: &Cfg, profile: &Profile, config: &OptimizerConfig) -> Plan {
    let budget = (profile.cycles as f64 * config.budget_fraction) as u64;
    let mut plan = Plan::default();
    let mut spent = 0u64;

    // Precompute per-function guard cost at each level and encryption cost.
    struct FuncInfo {
        name: String,
        guard_cost: Vec<u64>, // per level
        enc_cost: u64,
        instrs: usize,
    }
    let mut infos: Vec<FuncInfo> = Vec::new();
    for (fi, func) in cfg.functions.iter().enumerate() {
        let Some(name) = func.name.clone() else {
            continue;
        };
        let instrs: usize = func.blocks.iter().map(|&b| cfg.blocks[b].len).sum();
        if instrs == 0 {
            continue;
        }
        let guard_cost: Vec<u64> = config
            .density_levels
            .iter()
            .map(|&density| {
                let selected: BTreeSet<usize> = place::select_in(
                    cfg,
                    image,
                    &func.blocks,
                    density,
                    config.placement,
                    Some(profile),
                    config.seed ^ fi as u64,
                );
                estimate::guard_extra_cycles(image, cfg, &selected, profile)
            })
            .collect();
        let enc_cost = estimate::decrypt_extra_cycles(
            profile,
            &[(func.entry, func.end)],
            config.decrypt_model,
            config.line_words,
        );
        infos.push(FuncInfo {
            name,
            guard_cost,
            enc_cost,
            instrs,
        });
    }

    // Greedy: repeatedly apply the best-ratio upgrade that fits.
    let mut level: BTreeMap<String, Option<usize>> = BTreeMap::new();
    let mut enc: BTreeMap<String, bool> = BTreeMap::new();
    loop {
        let mut best: Option<Upgrade> = None;
        for info in &infos {
            let cur = level.get(&info.name).copied().flatten();
            let next = match cur {
                None => Some(0),
                Some(i) if i + 1 < config.density_levels.len() => Some(i + 1),
                Some(_) => None,
            };
            if let Some(next) = next {
                let prev_cost = cur.map_or(0, |i| info.guard_cost[i]);
                let prev_density = cur.map_or(0.0, |i| config.density_levels[i]);
                let cost = info.guard_cost[next].saturating_sub(prev_cost);
                let value = (config.density_levels[next] - prev_density) * info.instrs as f64;
                if spent + cost <= budget {
                    let ratio = value / (cost.max(1)) as f64;
                    if best
                        .as_ref()
                        .is_none_or(|b| ratio > b.value / (b.cost.max(1)) as f64)
                    {
                        best = Some(Upgrade {
                            function: info.name.clone(),
                            to_level: Some(next),
                            cost,
                            value,
                        });
                    }
                }
            }
            if !enc.get(&info.name).copied().unwrap_or(false) {
                let cost = info.enc_cost;
                let value = info.instrs as f64;
                if spent + cost <= budget {
                    let ratio = value / (cost.max(1)) as f64;
                    if best
                        .as_ref()
                        .is_none_or(|b| ratio > b.value / (b.cost.max(1)) as f64)
                    {
                        best = Some(Upgrade {
                            function: info.name.clone(),
                            to_level: None,
                            cost,
                            value,
                        });
                    }
                }
            }
        }
        let Some(upgrade) = best else { break };
        spent += upgrade.cost;
        match upgrade.to_level {
            Some(l) => {
                level.insert(upgrade.function, Some(l));
            }
            None => {
                enc.insert(upgrade.function, true);
            }
        }
    }

    for info in &infos {
        let density = level
            .get(&info.name)
            .copied()
            .flatten()
            .map_or(0.0, |i| config.density_levels[i]);
        let encrypt = enc.get(&info.name).copied().unwrap_or(false);
        if density > 0.0 || encrypt {
            plan.functions.insert(
                info.name.clone(),
                FunctionPlan {
                    guard_density: density,
                    encrypt,
                },
            );
        }
    }
    plan.est_extra_cycles = spent;
    plan.coverage = coverage(&plan, cfg);
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexprot_sim::SimConfig;

    fn sample() -> (Image, Cfg, Profile) {
        // A hot loop in `hot`, a cold helper `cold`.
        let image = flexprot_asm::assemble_or_panic(
            r#"
main:   jal  hot
        jal  cold
        li   $v0, 10
        syscall
hot:    li   $t0, 2000
hloop:  addi $t0, $t0, -1
        bgtz $t0, hloop
        jr   $ra
cold:   li   $t1, 1
        addu $t1, $t1, $t1
        jr   $ra
"#,
        );
        let cfg = Cfg::recover(&image).unwrap();
        let profile = Profile::collect_clean(&image, &SimConfig::default());
        (image, cfg, profile)
    }

    #[test]
    fn zero_budget_yields_empty_plan() {
        let (image, cfg, profile) = sample();
        let config = OptimizerConfig {
            budget_fraction: 0.0,
            ..OptimizerConfig::default()
        };
        let plan = optimize(&image, &cfg, &profile, &config);
        // Everything costs at least a few cycles; nothing fits in zero.
        assert_eq!(plan.est_extra_cycles, 0);
        assert!(plan.functions.values().all(|f| f.guard_density == 0.0));
    }

    #[test]
    fn generous_budget_protects_everything() {
        let (image, cfg, profile) = sample();
        let config = OptimizerConfig {
            budget_fraction: 10.0,
            ..OptimizerConfig::default()
        };
        let plan = optimize(&image, &cfg, &profile, &config);
        for name in ["main", "hot", "cold"] {
            let fp = plan
                .functions
                .get(name)
                .unwrap_or_else(|| panic!("function {name} missing from plan {plan:?}"));
            assert_eq!(fp.guard_density, 1.0, "{name}");
            assert!(fp.encrypt, "{name}");
        }
        assert!(plan.coverage > 0.9);
    }

    #[test]
    fn tight_budget_prefers_cold_code() {
        let (image, cfg, profile) = sample();
        let config = OptimizerConfig {
            budget_fraction: 0.002,
            density_levels: vec![1.0],
            ..OptimizerConfig::default()
        };
        let plan = optimize(&image, &cfg, &profile, &config);
        let hot = plan.functions.get("hot").copied().unwrap_or_default();
        let cold = plan.functions.get("cold").copied().unwrap_or_default();
        // The hot loop is unaffordable at a 0.2% budget; the cold helper is
        // nearly free.
        assert!(cold.guard_density > 0.0, "plan: {plan:?}");
        assert_eq!(hot.guard_density, 0.0, "plan: {plan:?}");
    }

    #[test]
    fn budget_is_respected() {
        let (image, cfg, profile) = sample();
        for budget in [0.001, 0.01, 0.1, 1.0] {
            let config = OptimizerConfig {
                budget_fraction: budget,
                ..OptimizerConfig::default()
            };
            let plan = optimize(&image, &cfg, &profile, &config);
            let allowed = (profile.cycles as f64 * budget) as u64;
            assert!(
                plan.est_extra_cycles <= allowed,
                "budget {budget}: spent {} of {allowed}",
                plan.est_extra_cycles
            );
        }
    }

    #[test]
    fn coverage_is_monotone_in_budget() {
        let (image, cfg, profile) = sample();
        let mut last = -1.0f64;
        for budget in [0.0, 0.005, 0.05, 0.5, 5.0] {
            let config = OptimizerConfig {
                budget_fraction: budget,
                ..OptimizerConfig::default()
            };
            let plan = optimize(&image, &cfg, &profile, &config);
            assert!(
                plan.coverage >= last - 1e-9,
                "coverage dropped at budget {budget}"
            );
            last = plan.coverage;
        }
        assert!(last > 0.9);
    }
}
