//! Register-guard insertion: the binary-rewriting half of the codesign.
//!
//! For every selected basic block the pass inserts a guard sequence —
//! [`SIG_SYMBOLS`] architecturally inert instructions carrying the keyed
//! signature of the block's body — between the body and the terminator.
//! Because code moves, every address-bearing field is re-patched through
//! the image's relocation table; the pass refuses images whose control
//! transfers lack relocations rather than corrupt them silently.
//!
//! The pass also derives everything the secure monitor must be provisioned
//! with: guard sites, window starts, protected ranges, spacing-reset points
//! and the guard-spacing bound (the longest guard-free executed path through
//! the protected functions, used to detect guard stripping).

use std::collections::{BTreeMap, BTreeSet};

use flexprot_isa::{Image, Inst, Reloc, RelocKind, Rng64};
use flexprot_secmon::guard::{encode_guard_inst, signature_symbols, WindowHasher, SIG_SYMBOLS};
use flexprot_secmon::schedule::{GuardSite, ProtectedRange, SecMonConfig};

use crate::cfg::Cfg;
use crate::error::ProtectError;
use crate::place::{self, Placement};
use crate::profile::Profile;

/// How guard targets are chosen.
#[derive(Debug, Clone, PartialEq)]
pub enum Selection {
    /// One density applied across the whole program.
    Density(f64),
    /// Per-function densities by symbol name; unlisted functions get none.
    PerFunction(BTreeMap<String, f64>),
}

/// Configuration of the guard-insertion pass.
#[derive(Debug, Clone, PartialEq)]
pub struct GuardConfig {
    /// Key for window hashing (shared with the monitor).
    pub key: u64,
    /// Seed for placement and salt randomness (deterministic runs).
    pub seed: u64,
    /// Placement policy.
    pub placement: Placement,
    /// Which blocks to guard.
    pub selection: Selection,
    /// Guarantee a finite guard-spacing bound by additionally guarding every
    /// eligible loop header of each protected function.
    pub enforce_spacing: bool,
}

impl GuardConfig {
    /// A reasonable default: uniform placement at the given density with
    /// spacing enforcement, fixed keys (callers wanting secrecy supply their
    /// own).
    pub fn with_density(density: f64) -> GuardConfig {
        GuardConfig {
            key: 0x0BAD_C0DE_CAFE_F00D,
            seed: 1,
            placement: Placement::Uniform,
            selection: Selection::Density(density),
            enforce_spacing: true,
        }
    }
}

/// The product of guard insertion.
#[derive(Debug, Clone, PartialEq)]
pub struct GuardOutcome {
    /// The rewritten image (plaintext; encryption runs afterwards).
    pub image: Image,
    /// Guard sites for the monitor.
    pub sites: BTreeMap<u32, GuardSite>,
    /// Window-start (guarded-leader) addresses.
    pub window_starts: BTreeSet<u32>,
    /// Protected function ranges (spacing-counted).
    pub protected: Vec<ProtectedRange>,
    /// Spacing-reset points (protected function entries).
    pub reset_points: BTreeSet<u32>,
    /// Spacing bound, when every protected cycle contains a guard.
    pub spacing_bound: Option<u64>,
    /// Number of guard sequences inserted.
    pub guards_inserted: usize,
    /// The guard key (forwarded to the monitor).
    pub key: u64,
}

impl GuardOutcome {
    /// Builds a monitor configuration covering only the guard layer
    /// (no encryption); the pipeline merges encryption in afterwards.
    pub fn secmon_config(&self) -> SecMonConfig {
        SecMonConfig {
            guard_key: self.key,
            sites: self.sites.clone(),
            window_starts: self.window_starts.clone(),
            protected: self.protected.clone(),
            spacing_bound: self.spacing_bound,
            reset_points: self.reset_points.clone(),
            halt_on_tamper: true,
            ..SecMonConfig::transparent()
        }
    }
}

/// Computes exactly the block set [`insert_guards`] will guard — selection
/// policy plus loop-header enforcement. Exposed so the estimator and the
/// optimizer can predict costs for the *actual* selection.
///
/// # Errors
///
/// Fails on invalid densities.
pub fn select_guard_blocks(
    image: &Image,
    cfg: &Cfg,
    config: &GuardConfig,
    profile: Option<&Profile>,
) -> Result<BTreeSet<usize>, ProtectError> {
    let mut selected: BTreeSet<usize> = match &config.selection {
        Selection::Density(density) => {
            if !(0.0..=1.0).contains(density) {
                return Err(ProtectError::BadConfig(format!(
                    "guard density {density} outside [0, 1]"
                )));
            }
            let all: Vec<usize> = (0..cfg.blocks.len()).collect();
            place::select_in(
                cfg,
                image,
                &all,
                *density,
                config.placement,
                profile,
                config.seed,
            )
        }
        Selection::PerFunction(densities) => {
            let mut sel = BTreeSet::new();
            for (fi, func) in cfg.functions.iter().enumerate() {
                let Some(name) = func.name.as_deref() else {
                    continue;
                };
                let Some(&density) = densities.get(name) else {
                    continue;
                };
                sel.extend(place::select_in(
                    cfg,
                    image,
                    &func.blocks,
                    density,
                    config.placement,
                    profile,
                    config.seed ^ fi as u64,
                ));
            }
            sel
        }
    };
    if config.enforce_spacing && !selected.is_empty() {
        let protected_funcs: BTreeSet<usize> =
            selected.iter().map(|&b| cfg.blocks[b].func).collect();
        for (bi, block) in cfg.blocks.iter().enumerate() {
            if block.is_loop_header
                && protected_funcs.contains(&block.func)
                && place::is_eligible(cfg, bi)
            {
                selected.insert(bi);
            }
        }
    }
    Ok(selected)
}

/// Runs the guard-insertion pass.
///
/// # Errors
///
/// Fails when CFG recovery fails, when a control transfer lacks a
/// relocation, or when a re-patched field overflows its encoding.
pub fn insert_guards(
    image: &Image,
    config: &GuardConfig,
    profile: Option<&Profile>,
) -> Result<GuardOutcome, ProtectError> {
    let cfg = Cfg::recover(image)?;
    validate_relocatable(image)?;
    let selected = select_guard_blocks(image, &cfg, config, profile)?;

    // --- layout ---
    let sig_len = SIG_SYMBOLS as usize;
    let old_len = image.text.len();
    let mut old2new = vec![usize::MAX; old_len];
    let mut new_text: Vec<u32> = Vec::with_capacity(old_len + selected.len() * sig_len);
    // (block index, new leader index, new site index) per guarded block.
    let mut guard_slots: Vec<(usize, usize, usize)> = Vec::with_capacity(selected.len());
    for (bi, block) in cfg.blocks.iter().enumerate() {
        let body = block.body_len();
        let leader_new = new_text.len();
        for w in 0..body {
            old2new[block.start + w] = new_text.len();
            new_text.push(image.text[block.start + w]);
        }
        if selected.contains(&bi) {
            let site_new = new_text.len();
            guard_slots.push((bi, leader_new, site_new));
            new_text.extend(std::iter::repeat_n(Inst::NOP.encode(), sig_len));
        }
        for w in body..block.len {
            old2new[block.start + w] = new_text.len();
            new_text.push(image.text[block.start + w]);
        }
    }
    debug_assert!(old2new.iter().all(|&i| i != usize::MAX));

    // --- rebuild the image ---
    // Two mappings are needed: `old2new` places each *instruction word*;
    // `target_map` redirects *references* to an address. They differ only
    // for guarded blocks with an empty body (a lone terminator): the guard
    // sequence physically precedes the terminator, and jumps to the block
    // must land on the guards, or branch-entered blocks would skip their
    // check entirely (breaking both coverage and the spacing bound).
    let mut target_map = old2new.clone();
    for &(bi, leader_new, _) in &guard_slots {
        if cfg.blocks[bi].body_len() == 0 {
            target_map[cfg.blocks[bi].start] = leader_new;
        }
    }
    let new_len = new_text.len();
    let new_addr = |new_index: usize| image.text_base + 4 * new_index as u32;
    let map_addr = |addr: u32| -> u32 {
        match image.text_index_of(addr) {
            Some(old_index) => new_addr(target_map[old_index]),
            None if addr == image.text_end() => new_addr(new_len),
            None => addr,
        }
    };

    let mut out = image.clone();
    out.text = new_text;
    out.entry = map_addr(image.entry);
    for addr in out.symbols.values_mut() {
        *addr = map_addr(*addr);
    }
    out.relocs = Vec::with_capacity(image.relocs.len());
    for reloc in &image.relocs {
        let new_index = old2new[reloc.text_index];
        let new_target = map_addr(reloc.target);
        let addr = new_addr(new_index);
        let word = out.text[new_index];
        out.text[new_index] =
            patch_field(word, reloc.kind, new_target, addr).ok_or(ProtectError::RelocOverflow {
                addr,
                target: new_target,
            })?;
        out.relocs.push(Reloc {
            text_index: new_index,
            kind: reloc.kind,
            target: new_target,
        });
    }

    // --- sign windows and emit guard words ---
    let mut rng = Rng64::new(config.seed ^ 0x6A4D_5157);
    let mut sites = BTreeMap::new();
    let mut window_starts = BTreeSet::new();
    for &(bi, leader_new, site_new) in &guard_slots {
        let body = cfg.blocks[bi].body_len();
        let tail = (cfg.blocks[bi].len - body) as u32;
        let window_addr = new_addr(leader_new);
        // The signature covers the body *and* the post-guard terminator
        // (skipping the guard words themselves, which carry the signature).
        let mut hasher = WindowHasher::new(config.key);
        for k in 0..body {
            hasher.absorb(new_addr(leader_new + k), out.text[leader_new + k]);
        }
        for t in 0..tail as usize {
            let index = site_new + sig_len + t;
            hasher.absorb(new_addr(index), out.text[index]);
        }
        let digest = hasher.digest();
        for (k, symbol) in signature_symbols(digest).into_iter().enumerate() {
            let salt: u8 = rng.next_u8();
            out.text[site_new + k] = encode_guard_inst(symbol, salt).encode();
        }
        sites.insert(
            new_addr(site_new),
            GuardSite {
                symbols: SIG_SYMBOLS,
                tail,
            },
        );
        window_starts.insert(window_addr);
    }

    // --- protected ranges, reset points, spacing bound ---
    let protected_funcs: BTreeSet<usize> = guard_slots
        .iter()
        .map(|&(bi, _, _)| cfg.blocks[bi].func)
        .collect();
    let protected: Vec<ProtectedRange> = protected_funcs
        .iter()
        .map(|&fi| ProtectedRange {
            start: map_addr(cfg.functions[fi].entry),
            end: map_addr(cfg.functions[fi].end),
        })
        .collect();
    let mut reset_points: BTreeSet<u32> = protected_funcs
        .iter()
        .map(|&fi| map_addr(cfg.functions[fi].entry))
        .collect();
    // Also reset at call return points inside protected functions: calls
    // into protected callees reset at the callee entry, so without a
    // caller-side reset the callee's tail and the caller's continuation
    // would concatenate across the return and overflow the intraprocedural
    // bound. A discontinuity landing exactly on a registered return point
    // cannot be abused without semantically visible control-flow changes.
    for block in &cfg.blocks {
        if !protected_funcs.contains(&block.func) {
            continue;
        }
        if matches!(
            block.terminator,
            crate::cfg::Terminator::Call { .. } | crate::cfg::Terminator::IndirectCall
        ) {
            let return_index = block.start + block.len;
            if return_index < old_len {
                reset_points.insert(new_addr(target_map[return_index]));
            }
        }
    }
    let spacing_bound = if config.enforce_spacing && !guard_slots.is_empty() {
        spacing_bound(&cfg, &selected, &protected_funcs)
    } else {
        None
    };

    Ok(GuardOutcome {
        image: out,
        sites,
        window_starts,
        protected,
        reset_points,
        spacing_bound,
        guards_inserted: guard_slots.len(),
        key: config.key,
    })
}

/// Checks that every direct control transfer carries a relocation, so code
/// motion cannot silently break it.
fn validate_relocatable(image: &Image) -> Result<(), ProtectError> {
    let mut relocated: BTreeSet<usize> = BTreeSet::new();
    for reloc in &image.relocs {
        if matches!(reloc.kind, RelocKind::Branch16 | RelocKind::Jump26) {
            relocated.insert(reloc.text_index);
        }
    }
    for (addr, decoded) in image.decode_text() {
        let inst = decoded.expect("validated by CFG recovery");
        if (inst.is_branch() || inst.is_direct_jump())
            && !relocated.contains(&image.text_index_of(addr).expect("in range"))
        {
            return Err(ProtectError::MissingReloc { addr });
        }
    }
    Ok(())
}

/// Re-encodes one relocated field for a new target/instruction address.
/// Returns `None` when the value no longer fits.
fn patch_field(word: u32, kind: RelocKind, target: u32, inst_addr: u32) -> Option<u32> {
    match kind {
        RelocKind::Hi16 => Some((word & 0xFFFF_0000) | (target >> 16)),
        RelocKind::Lo16 => Some((word & 0xFFFF_0000) | (target & 0xFFFF)),
        RelocKind::Jump26 => {
            let words = target >> 2;
            (words < (1 << 26)).then_some((word & 0xFC00_0000) | words)
        }
        RelocKind::Branch16 => {
            let delta = (i64::from(target) - i64::from(inst_addr) - 4) / 4;
            let off = i16::try_from(delta).ok()?;
            Some((word & 0xFFFF_0000) | u32::from(off as u16))
        }
    }
}

/// Longest guard-free executed path through the protected functions, plus
/// slack; `None` when an unguarded cycle exists (the bound would be
/// meaningless).
fn spacing_bound(
    cfg: &Cfg,
    selected: &BTreeSet<usize>,
    protected_funcs: &BTreeSet<usize>,
) -> Option<u64> {
    let sig = u64::from(SIG_SYMBOLS);
    let weight =
        |bi: usize| cfg.blocks[bi].len as u64 + if selected.contains(&bi) { sig } else { 0 };

    // Nodes: unguarded blocks of protected functions.
    let in_graph =
        |bi: usize| protected_funcs.contains(&cfg.blocks[bi].func) && !selected.contains(&bi);
    let nodes: Vec<usize> = (0..cfg.blocks.len()).filter(|&b| in_graph(b)).collect();
    let mut indegree: BTreeMap<usize, usize> = nodes.iter().map(|&n| (n, 0)).collect();
    for &n in &nodes {
        for &s in &cfg.blocks[n].succs {
            if in_graph(s) {
                *indegree.get_mut(&s).expect("node present") += 1;
            }
        }
    }
    // Kahn's algorithm with longest-path DP.
    let mut ready: Vec<usize> = nodes.iter().copied().filter(|n| indegree[n] == 0).collect();
    let mut longest: BTreeMap<usize, u64> = nodes.iter().map(|&n| (n, weight(n))).collect();
    let mut processed = 0usize;
    let mut best = 0u64;
    while let Some(n) = ready.pop() {
        processed += 1;
        best = best.max(longest[&n]);
        for &s in &cfg.blocks[n].succs.clone() {
            if !in_graph(s) {
                continue;
            }
            let candidate = longest[&n] + weight(s);
            let entry = longest.get_mut(&s).expect("node present");
            *entry = (*entry).max(candidate);
            let d = indegree.get_mut(&s).expect("node present");
            *d -= 1;
            if *d == 0 {
                ready.push(s);
            }
        }
    }
    if processed != nodes.len() {
        return None; // unguarded cycle
    }
    let max_block = (0..cfg.blocks.len())
        .filter(|&b| protected_funcs.contains(&cfg.blocks[b].func))
        .map(weight)
        .max()
        .unwrap_or(0);
    Some(best + 2 * max_block + 16)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexprot_sim::{Machine, Outcome, SimConfig};

    const SRC: &str = r#"
        .data
nums:   .word 9, 4, 7, 1, 8
msg:    .asciiz "sum="
        .text
main:   la   $a0, msg
        li   $v0, 4
        syscall
        la   $s0, nums
        li   $s1, 5
        li   $s2, 0
loop:   lw   $t0, 0($s0)
        jal  scale
        addu $s2, $s2, $v0
        addi $s0, $s0, 4
        addi $s1, $s1, -1
        bgtz $s1, loop
        move $a0, $s2
        li   $v0, 1
        syscall
        li   $v0, 10
        syscall
scale:  mul  $v0, $t0, $t0
        jr   $ra
"#;

    fn baseline_output() -> String {
        let image = flexprot_asm::assemble_or_panic(SRC);
        let r = Machine::new(&image, SimConfig::default()).run();
        assert_eq!(r.outcome, Outcome::Exit(0));
        r.output
    }

    fn protect(density: f64) -> (GuardOutcome, Image) {
        let image = flexprot_asm::assemble_or_panic(SRC);
        let out = insert_guards(&image, &GuardConfig::with_density(density), None).unwrap();
        (out, image)
    }

    fn run_protected(out: &GuardOutcome) -> flexprot_sim::RunResult {
        let monitor = flexprot_secmon::SecMon::new(out.secmon_config());
        Machine::with_monitor(&out.image, SimConfig::default(), monitor).run()
    }

    #[test]
    fn zero_density_is_identity() {
        let image = flexprot_asm::assemble_or_panic(SRC);
        let config = GuardConfig {
            enforce_spacing: false,
            ..GuardConfig::with_density(0.0)
        };
        let out = insert_guards(&image, &config, None).unwrap();
        assert_eq!(out.image.text, image.text);
        assert_eq!(out.guards_inserted, 0);
        assert!(out.sites.is_empty());
    }

    #[test]
    fn full_density_preserves_semantics() {
        let (out, _) = protect(1.0);
        assert!(out.guards_inserted >= 4);
        let r = run_protected(&out);
        assert_eq!(r.outcome, Outcome::Exit(0), "output: {}", r.output);
        assert_eq!(r.output, baseline_output());
    }

    #[test]
    fn guard_checks_actually_execute() {
        let (out, _) = protect(1.0);
        let monitor = flexprot_secmon::SecMon::new(out.secmon_config());
        let mut machine = Machine::with_monitor(&out.image, SimConfig::default(), monitor);
        let r = machine.run();
        assert_eq!(r.outcome, Outcome::Exit(0));
        // The loop runs 5 times, so far more checks than static sites.
        assert!(machine.monitor().checks_passed() > out.guards_inserted as u64);
    }

    #[test]
    fn partial_density_preserves_semantics() {
        for density in [0.1, 0.3, 0.6] {
            let (out, _) = protect(density);
            let r = run_protected(&out);
            assert_eq!(r.outcome, Outcome::Exit(0), "density {density}");
            assert_eq!(r.output, baseline_output(), "density {density}");
        }
    }

    #[test]
    fn size_overhead_matches_inserted_guards() {
        let (out, original) = protect(1.0);
        assert_eq!(
            out.image.text.len(),
            original.text.len() + out.guards_inserted * SIG_SYMBOLS as usize
        );
    }

    #[test]
    fn tampered_body_word_is_detected() {
        let (mut out, _) = protect(1.0);
        // Flip a bit in the first window body word (the first text word is a
        // guarded block's body because density is 1.0 and main's first block
        // is guarded).
        out.image.text[0] ^= 1 << 3;
        let r = run_protected(&out);
        assert!(
            matches!(r.outcome, Outcome::TamperDetected(_)),
            "got {:?}",
            r.outcome
        );
    }

    #[test]
    fn spacing_bound_is_finite_with_loop_coverage() {
        let (out, _) = protect(0.2);
        assert!(
            out.spacing_bound.is_some(),
            "enforce_spacing must produce a bound"
        );
        // And the bound must not false-positive on the legitimate run.
        let r = run_protected(&out);
        assert_eq!(r.outcome, Outcome::Exit(0));
    }

    #[test]
    fn guard_stripping_trips_spacing_bound() {
        let (mut out, _) = protect(0.3);
        assert!(out.spacing_bound.is_some());
        // The attacker NOPs out every guard instruction (they know the
        // sites somehow) — checks then never pass, and the spacing counter
        // must trip.
        let sites: Vec<u32> = out.sites.keys().copied().collect();
        for site in sites {
            let idx = out.image.text_index_of(site).unwrap();
            for k in 0..SIG_SYMBOLS as usize {
                out.image.text[idx + k] = Inst::NOP.encode();
            }
        }
        let r = run_protected(&out);
        assert!(
            matches!(r.outcome, Outcome::TamperDetected(_)),
            "stripping must be detected, got {:?}",
            r.outcome
        );
    }

    #[test]
    fn per_function_selection_only_touches_named_function() {
        let image = flexprot_asm::assemble_or_panic(SRC);
        let mut densities = BTreeMap::new();
        densities.insert("scale".to_owned(), 1.0);
        let config = GuardConfig {
            selection: Selection::PerFunction(densities),
            enforce_spacing: false,
            ..GuardConfig::with_density(0.0)
        };
        let out = insert_guards(&image, &config, None).unwrap();
        assert_eq!(out.guards_inserted, 1);
        let scale = out.image.symbol("scale").unwrap();
        for &site in out.sites.keys() {
            assert!(site >= scale, "guard site outside scale: {site:#x}");
        }
        let r = run_protected(&out);
        assert_eq!(r.outcome, Outcome::Exit(0));
        assert_eq!(r.output, baseline_output());
    }

    #[test]
    fn relocs_remain_valid_after_rewrite() {
        let (out, _) = protect(1.0);
        for reloc in &out.image.relocs {
            assert!(reloc.text_index < out.image.text.len());
            // Branch relocs: re-decoding the patched word must give back the
            // recorded target.
            let word = out.image.text[reloc.text_index];
            let addr = out.image.addr_of_index(reloc.text_index);
            let inst = Inst::decode(word).unwrap();
            match reloc.kind {
                RelocKind::Branch16 => {
                    assert_eq!(inst.branch_target(addr), Some(reloc.target));
                }
                RelocKind::Jump26 => {
                    assert_eq!(inst.jump_target(), Some(reloc.target));
                }
                RelocKind::Hi16 | RelocKind::Lo16 => {}
            }
        }
    }

    #[test]
    fn unrelocatable_image_is_refused() {
        // A branch with a numeric offset has no reloc.
        let image = flexprot_asm::assemble_or_panic("main: beq $t0, $t1, 1\n nop\n nop\n");
        let err = insert_guards(&image, &GuardConfig::with_density(1.0), None).unwrap_err();
        assert!(matches!(err, ProtectError::MissingReloc { .. }));
    }

    #[test]
    fn bad_density_is_rejected() {
        let image = flexprot_asm::assemble_or_panic("main: nop\n nop\n");
        let err = insert_guards(&image, &GuardConfig::with_density(1.5), None).unwrap_err();
        assert!(matches!(err, ProtectError::BadConfig(_)));
    }

    #[test]
    fn determinism_same_seed_same_output() {
        let (a, _) = protect(0.5);
        let (b, _) = protect(0.5);
        assert_eq!(a.image.text, b.image.text);
        assert_eq!(a.sites, b.sites);
    }
}
