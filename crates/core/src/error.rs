//! Errors raised by the protection toolchain.

use std::fmt;

/// Error produced while analysing or rewriting a binary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtectError {
    /// A text word failed to decode during CFG recovery.
    UndecodableText { addr: u32, word: u32 },
    /// A branch or jump targets an address outside the text segment or not
    /// at an instruction boundary.
    BadControlTarget { addr: u32, target: u32 },
    /// A control-flow instruction has no relocation record, so rewriting
    /// would silently break it.
    MissingReloc { addr: u32 },
    /// A relocated field no longer fits its encoding after re-layout.
    RelocOverflow { addr: u32, target: u32 },
    /// A configuration parameter is out of range.
    BadConfig(String),
    /// The independent post-protection verification found error-severity
    /// findings — the toolchain refused to ship an image it cannot prove.
    VerificationFailed {
        /// Number of error-severity findings.
        errors: usize,
        /// The first finding, preformatted for display.
        first: String,
    },
    /// The key-flow taint analysis found key-derived data escaping to an
    /// observable sink — an FP901/FP902 error-severity finding (mandatory
    /// self-check requested via `ProtectionConfig::with_key_flow_check`).
    KeyFlowLeak {
        /// Error-severity FP9xx findings.
        errors: usize,
        /// Witness address of the first leak, if the analysis has one.
        witness: Option<u32>,
        /// The first finding, preformatted for display.
        first: String,
    },
    /// The translation validator could not prove the protected image
    /// semantically equivalent to its baseline (mandatory self-check
    /// requested via `ProtectionConfig::with_translation_validation`).
    TranslationUnproven {
        /// `"inequivalent"` or `"refused"`.
        verdict: &'static str,
        /// Witness address for inequivalence, if any.
        witness: Option<u32>,
        /// The first finding or refusal reason, preformatted for display.
        first: String,
    },
}

impl fmt::Display for ProtectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ProtectError::UndecodableText { addr, word } => {
                write!(f, "undecodable text word {word:#010x} at {addr:#010x}")
            }
            ProtectError::BadControlTarget { addr, target } => {
                write!(
                    f,
                    "control transfer at {addr:#010x} targets invalid address {target:#010x}"
                )
            }
            ProtectError::MissingReloc { addr } => {
                write!(
                    f,
                    "control transfer at {addr:#010x} lacks a relocation; cannot rewrite safely"
                )
            }
            ProtectError::RelocOverflow { addr, target } => {
                write!(
                    f,
                    "relocated field at {addr:#010x} cannot encode target {target:#010x}"
                )
            }
            ProtectError::BadConfig(ref msg) => write!(f, "invalid configuration: {msg}"),
            ProtectError::VerificationFailed { errors, ref first } => {
                write!(
                    f,
                    "post-protection verification failed with {errors} error(s); first: {first}"
                )
            }
            ProtectError::KeyFlowLeak {
                errors,
                witness,
                ref first,
            } => {
                write!(f, "key-flow check failed with {errors} leak(s)")?;
                if let Some(addr) = witness {
                    write!(f, " (witness {addr:#010x})")?;
                }
                write!(f, "; first: {first}")
            }
            ProtectError::TranslationUnproven {
                verdict,
                witness,
                ref first,
            } => {
                write!(f, "translation validation {verdict}")?;
                if let Some(addr) = witness {
                    write!(f, " (witness {addr:#010x})")?;
                }
                write!(f, ": {first}")
            }
        }
    }
}

impl std::error::Error for ProtectError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(ProtectError::UndecodableText { addr: 4, word: 5 }
            .to_string()
            .contains("undecodable"));
        assert!(ProtectError::MissingReloc { addr: 4 }
            .to_string()
            .contains("relocation"));
        assert!(ProtectError::BadConfig("x".into())
            .to_string()
            .contains("x"));
    }
}
