//! Static overhead estimation.
//!
//! The codesign loop needs to predict the runtime cost of a protection plan
//! *without* re-simulating every candidate: the estimator combines the
//! baseline profile with two first-order cost terms —
//!
//! * **guards**: each entry into a guarded block executes
//!   [`SIG_SYMBOLS`] extra single-cycle instructions;
//! * **encryption**: each I-cache miss whose line falls in an encrypted
//!   range pays the decrypt unit's fill penalty.
//!
//! Experiment F5 quantifies how well these estimates track simulation.

use std::collections::BTreeSet;

use flexprot_isa::Image;
use flexprot_secmon::decrypt::DecryptModel;
use flexprot_secmon::guard::SIG_SYMBOLS;

use crate::cfg::Cfg;
use crate::profile::Profile;

/// The estimator's breakdown of predicted cost.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OverheadEstimate {
    /// Cycles of the unprotected baseline run.
    pub baseline_cycles: u64,
    /// Predicted extra cycles from executing guard instructions.
    pub guard_extra: u64,
    /// Predicted extra cycles from fetch-path decryption.
    pub decrypt_extra: u64,
}

impl OverheadEstimate {
    /// Predicted protected-run cycle count.
    pub fn total_cycles(&self) -> u64 {
        self.baseline_cycles + self.guard_extra + self.decrypt_extra
    }

    /// Predicted relative overhead, e.g. `0.07` for +7%.
    pub fn overhead_fraction(&self) -> f64 {
        if self.baseline_cycles == 0 {
            0.0
        } else {
            (self.guard_extra + self.decrypt_extra) as f64 / self.baseline_cycles as f64
        }
    }
}

/// Predicted extra cycles from guarding `selected` blocks.
pub fn guard_extra_cycles(
    image: &Image,
    cfg: &Cfg,
    selected: &BTreeSet<usize>,
    profile: &Profile,
) -> u64 {
    selected
        .iter()
        .map(|&bi| profile.block_entries(image, &cfg.blocks[bi]) * u64::from(SIG_SYMBOLS))
        .sum()
}

/// Predicted extra cycles from encrypting the address ranges `ranges`
/// (`[start, end)` pairs in baseline addresses).
pub fn decrypt_extra_cycles(
    profile: &Profile,
    ranges: &[(u32, u32)],
    model: DecryptModel,
    line_words: u32,
) -> u64 {
    ranges
        .iter()
        .map(|&(start, end)| profile.miss_fills_in(start, end) * model.fill_penalty(line_words))
        .sum()
}

/// Combines both cost terms into a full estimate.
pub fn estimate(
    image: &Image,
    cfg: &Cfg,
    selected: &BTreeSet<usize>,
    enc_ranges: &[(u32, u32)],
    model: DecryptModel,
    line_words: u32,
    profile: &Profile,
) -> OverheadEstimate {
    OverheadEstimate {
        baseline_cycles: profile.cycles,
        guard_extra: guard_extra_cycles(image, cfg, selected, profile),
        decrypt_extra: decrypt_extra_cycles(profile, enc_ranges, model, line_words),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexprot_sim::SimConfig;

    fn sample() -> (Image, Cfg, Profile) {
        let image = flexprot_asm::assemble_or_panic(
            r#"
main:   li   $t0, 100
loop:   addi $t0, $t0, -1
        bgtz $t0, loop
        li   $v0, 10
        syscall
"#,
        );
        let cfg = Cfg::recover(&image).unwrap();
        let profile = Profile::collect_clean(&image, &SimConfig::default());
        (image, cfg, profile)
    }

    #[test]
    fn guard_cost_scales_with_entries() {
        let (image, cfg, profile) = sample();
        // Block 1 is the loop body (100 entries); block 0 runs once.
        let mut hot = BTreeSet::new();
        hot.insert(1usize);
        let mut cold = BTreeSet::new();
        cold.insert(0usize);
        let hot_cost = guard_extra_cycles(&image, &cfg, &hot, &profile);
        let cold_cost = guard_extra_cycles(&image, &cfg, &cold, &profile);
        assert_eq!(hot_cost, 100 * u64::from(SIG_SYMBOLS));
        assert_eq!(cold_cost, u64::from(SIG_SYMBOLS));
    }

    #[test]
    fn decrypt_cost_counts_only_covered_misses() {
        let (image, _, profile) = sample();
        let model = DecryptModel {
            cycles_per_word: 2,
            startup: 4,
            pipelined: false,
        };
        let all = decrypt_extra_cycles(&profile, &[(image.text_base, image.text_end())], model, 8);
        let none = decrypt_extra_cycles(&profile, &[(0, 4)], model, 8);
        assert!(all > 0);
        assert_eq!(none, 0);
    }

    #[test]
    fn estimate_combines_and_reports_fraction() {
        let (image, cfg, profile) = sample();
        let mut selected = BTreeSet::new();
        selected.insert(1usize);
        let est = estimate(
            &image,
            &cfg,
            &selected,
            &[(image.text_base, image.text_end())],
            DecryptModel::baseline(),
            8,
            &profile,
        );
        assert_eq!(est.baseline_cycles, profile.cycles);
        assert_eq!(
            est.total_cycles(),
            est.baseline_cycles + est.guard_extra + est.decrypt_extra
        );
        assert!(est.overhead_fraction() > 0.0);
    }

    #[test]
    fn empty_estimate_is_zero_overhead() {
        let est = OverheadEstimate::default();
        assert_eq!(est.overhead_fraction(), 0.0);
        assert_eq!(est.total_cycles(), 0);
    }
}
