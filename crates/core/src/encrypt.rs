//! Instruction-stream encryption pass.
//!
//! Encrypts text-segment words with the per-address keystream cipher, at
//! one of three keying granularities (the evaluation's F2 axis):
//!
//! * **program** — a single key for the whole text segment;
//! * **function** — a subkey per function, so leaking one function's key
//!   exposes nothing else;
//! * **block** — a subkey per basic block, the finest (and most
//!   region-table-hungry) option.
//!
//! The pass must run *after* guard insertion: it encrypts the final layout,
//! and guard signatures are computed over plaintext (the monitor hashes
//! post-decrypt words).

use std::collections::BTreeSet;

use flexprot_isa::Image;
use flexprot_secmon::cipher::{derive_subkey, keystream, EncRegion, RegionTable};
use flexprot_secmon::decrypt::DecryptModel;

use crate::cfg::Cfg;
use crate::error::ProtectError;

/// Keying granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Granularity {
    /// One key for the whole text segment.
    Program,
    /// One subkey per recovered function.
    Function,
    /// One subkey per basic block.
    Block,
}

/// Configuration of the encryption pass.
#[derive(Debug, Clone, PartialEq)]
pub struct EncryptConfig {
    /// Master key from which region subkeys are derived.
    pub master_key: u64,
    /// Keying granularity.
    pub granularity: Granularity,
    /// Decryption-unit latency model provisioned into the monitor.
    pub model: DecryptModel,
    /// Restrict encryption to these functions (by symbol name); `None`
    /// encrypts everything.
    pub scope: Option<BTreeSet<String>>,
}

impl EncryptConfig {
    /// Whole-program encryption with the baseline decrypt model.
    pub fn whole_program(master_key: u64) -> EncryptConfig {
        EncryptConfig {
            master_key,
            granularity: Granularity::Program,
            model: DecryptModel::baseline(),
            scope: None,
        }
    }
}

/// The product of the encryption pass.
#[derive(Debug, Clone, PartialEq)]
pub struct EncryptOutcome {
    /// Image whose text words are now ciphertext inside the regions.
    pub image: Image,
    /// Region table for the monitor.
    pub regions: RegionTable,
    /// The latency model for the monitor.
    pub model: DecryptModel,
}

/// Encrypts the image's text segment per `config`.
///
/// # Errors
///
/// Fails when CFG recovery fails (function/block granularity needs it).
pub fn encrypt_text(image: &Image, config: &EncryptConfig) -> Result<EncryptOutcome, ProtectError> {
    let cfg = Cfg::recover(image)?;
    let in_scope = |name: Option<&str>| -> bool {
        match (&config.scope, name) {
            (None, _) => true,
            (Some(scope), Some(name)) => scope.contains(name),
            (Some(_), None) => false,
        }
    };

    let mut regions: Vec<EncRegion> = Vec::new();
    match config.granularity {
        Granularity::Program => {
            if config.scope.is_none() {
                regions.push(EncRegion {
                    start: image.text_base,
                    end: image.text_end(),
                    key: derive_subkey(config.master_key, image.text_base),
                });
            } else {
                // Scoped "program" granularity degrades to per-function
                // regions sharing one key.
                let key = derive_subkey(config.master_key, image.text_base);
                for func in &cfg.functions {
                    if in_scope(func.name.as_deref()) {
                        regions.push(EncRegion {
                            start: func.entry,
                            end: func.end,
                            key,
                        });
                    }
                }
            }
        }
        Granularity::Function => {
            for func in &cfg.functions {
                if in_scope(func.name.as_deref()) {
                    regions.push(EncRegion {
                        start: func.entry,
                        end: func.end,
                        key: derive_subkey(config.master_key, func.entry),
                    });
                }
            }
        }
        Granularity::Block => {
            for func in &cfg.functions {
                if !in_scope(func.name.as_deref()) {
                    continue;
                }
                for &bi in &func.blocks {
                    let block = &cfg.blocks[bi];
                    let start = image.addr_of_index(block.start);
                    regions.push(EncRegion {
                        start,
                        end: start + 4 * block.len as u32,
                        key: derive_subkey(config.master_key, start),
                    });
                }
            }
        }
    }

    let mut out = image.clone();
    for region in &regions {
        let mut addr = region.start;
        while addr < region.end {
            let index = out.text_index_of(addr).expect("region inside text");
            out.text[index] ^= keystream(region.key, addr);
            addr += 4;
        }
    }
    Ok(EncryptOutcome {
        image: out,
        regions: RegionTable::new(regions),
        model: config.model,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexprot_secmon::{SecMon, SecMonConfig};
    use flexprot_sim::{Machine, Outcome, SimConfig};

    const SRC: &str = r#"
main:   li   $t0, 4
        jal  sq
        move $a0, $v0
        li   $v0, 1
        syscall
        li   $v0, 10
        syscall
sq:     mul  $v0, $t0, $t0
        jr   $ra
"#;

    fn encrypted_secmon(out: &EncryptOutcome) -> SecMon {
        SecMon::new(SecMonConfig {
            regions: out.regions.clone(),
            decrypt: out.model,
            ..SecMonConfig::transparent()
        })
    }

    fn run_encrypted(granularity: Granularity) -> flexprot_sim::RunResult {
        let image = flexprot_asm::assemble_or_panic(SRC);
        let config = EncryptConfig {
            granularity,
            ..EncryptConfig::whole_program(0xFEED)
        };
        let out = encrypt_text(&image, &config).unwrap();
        assert_ne!(out.image.text, image.text, "text must change");
        Machine::with_monitor(&out.image, SimConfig::default(), encrypted_secmon(&out)).run()
    }

    #[test]
    fn program_granularity_round_trips() {
        let r = run_encrypted(Granularity::Program);
        assert_eq!(r.outcome, Outcome::Exit(0));
        assert_eq!(r.output, "16");
        assert!(r.stats.monitor_fill_cycles > 0, "decrypt latency charged");
    }

    #[test]
    fn function_granularity_round_trips() {
        let r = run_encrypted(Granularity::Function);
        assert_eq!(r.outcome, Outcome::Exit(0));
        assert_eq!(r.output, "16");
    }

    #[test]
    fn block_granularity_round_trips() {
        let r = run_encrypted(Granularity::Block);
        assert_eq!(r.outcome, Outcome::Exit(0));
        assert_eq!(r.output, "16");
    }

    #[test]
    fn every_text_word_changes_under_program_encryption() {
        let image = flexprot_asm::assemble_or_panic(SRC);
        let out = encrypt_text(&image, &EncryptConfig::whole_program(0xFEED)).unwrap();
        let changed = image
            .text
            .iter()
            .zip(&out.image.text)
            .filter(|(a, b)| a != b)
            .count();
        // The keystream is never zero for all words in practice.
        assert!(changed >= image.text.len() - 1);
    }

    #[test]
    fn running_ciphertext_without_monitor_fails() {
        let image = flexprot_asm::assemble_or_panic(SRC);
        let out = encrypt_text(&image, &EncryptConfig::whole_program(0xFEED)).unwrap();
        let config = SimConfig {
            max_instructions: 100_000,
            ..SimConfig::default()
        };
        let r = Machine::new(&out.image, config).run();
        assert_ne!(r.outcome, Outcome::Exit(0));
    }

    #[test]
    fn scope_limits_encryption_to_named_functions() {
        let image = flexprot_asm::assemble_or_panic(SRC);
        let mut scope = BTreeSet::new();
        scope.insert("sq".to_owned());
        let config = EncryptConfig {
            granularity: Granularity::Function,
            scope: Some(scope),
            ..EncryptConfig::whole_program(0xFEED)
        };
        let out = encrypt_text(&image, &config).unwrap();
        let sq = image.symbol("sq").unwrap();
        // main's words are untouched.
        for (i, (&a, &b)) in image.text.iter().zip(&out.image.text).enumerate() {
            let addr = image.addr_of_index(i);
            if addr < sq {
                assert_eq!(a, b, "unscoped word at {addr:#x} changed");
            }
        }
        // sq's words did change.
        let sq_index = image.text_index_of(sq).unwrap();
        assert_ne!(image.text[sq_index..], out.image.text[sq_index..]);
        // And it still runs with the monitor.
        let r =
            Machine::with_monitor(&out.image, SimConfig::default(), encrypted_secmon(&out)).run();
        assert_eq!(r.outcome, Outcome::Exit(0));
        assert_eq!(r.output, "16");
    }

    #[test]
    fn block_granularity_uses_distinct_keys() {
        let image = flexprot_asm::assemble_or_panic(SRC);
        let config = EncryptConfig {
            granularity: Granularity::Block,
            ..EncryptConfig::whole_program(0xFEED)
        };
        let out = encrypt_text(&image, &config).unwrap();
        let keys: BTreeSet<u64> = out.regions.regions().iter().map(|r| r.key).collect();
        assert!(keys.len() > 1);
        assert_eq!(
            out.regions.regions().len(),
            Cfg::recover(&image).unwrap().blocks.len()
        );
    }
}
