//! Covert watermarking through the guard salt channel.
//!
//! Guard instructions have free bits — the opcode selector and the high
//! `rt` bits — that the emitter normally fills with randomness for
//! diversity. This module repurposes that channel to embed a covert
//! payload (a customer id, a build fingerprint) that survives shipping and
//! can be extracted from a binary given the guard schedule. Because the
//! salt bits do not participate in the signature symbols, the watermark is
//! orthogonal to integrity verification; because they look exactly like
//! the random diversity bits, a binary with a watermark is
//! indistinguishable from one without.
//!
//! Capacity: [`SALT_BITS_PER_WORD`] bits per guard instruction, i.e.
//! `4 × SIG_SYMBOLS = 16` bits per guard at the default sequence length.

use flexprot_isa::Image;
use flexprot_secmon::guard::{decode_guard_symbol, encode_guard_inst};
use flexprot_secmon::schedule::SecMonConfig;

use crate::error::ProtectError;

/// Payload bits carried per guard instruction (2 opcode-selector bits via
/// `salt >> 2` would disturb diversity less, but the full 4-bit salt is
/// recoverable, so all 4 bits are used: 2 in the `rt` high bits and 2 in
/// the opcode selector).
pub const SALT_BITS_PER_WORD: u32 = 4;

fn funct_selector(word: u32) -> u8 {
    // Inverse of the opcode pool in `encode_guard_inst` (funct -> selector).
    match word & 0x3F {
        0x21 => 0,
        0x25 => 1,
        0x26 => 2,
        0x24 => 3,
        0x2B => 4,
        0x27 => 5,
        _ => 0,
    }
}

fn salt_of_word(word: u32) -> u8 {
    let rt_hi = ((word >> 16) & 0x1F) >> 3; // the two free rt bits
    (funct_selector(word) << 2) | rt_hi as u8
}

/// Number of payload bits `config`'s guard schedule can carry.
pub fn capacity_bits(config: &SecMonConfig) -> u32 {
    config
        .sites
        .values()
        .map(|site| site.symbols * SALT_BITS_PER_WORD)
        .sum()
}

/// Embeds `payload` into the guard salts of `image` (in place).
///
/// Bits are consumed little-endian, byte by byte; remaining guard words
/// keep their existing salts. The signature symbols are preserved, so the
/// binary still verifies.
///
/// # Errors
///
/// Fails when the payload exceeds [`capacity_bits`].
pub fn embed(image: &mut Image, config: &SecMonConfig, payload: &[u8]) -> Result<(), ProtectError> {
    let needed = payload.len() as u32 * 8;
    let capacity = capacity_bits(config);
    if needed > capacity {
        return Err(ProtectError::BadConfig(format!(
            "watermark needs {needed} bits but the schedule carries only {capacity}"
        )));
    }
    let mut bit = 0usize;
    let mut next_bits = |n: u32| -> Option<u8> {
        if bit >= payload.len() * 8 {
            return None;
        }
        let mut value = 0u8;
        for k in 0..n {
            let index = bit + k as usize;
            if index < payload.len() * 8 {
                let b = (payload[index / 8] >> (index % 8)) & 1;
                value |= b << k;
            }
        }
        bit += n as usize;
        Some(value)
    };
    'sites: for (&site_addr, site) in &config.sites {
        let Some(start) = image.text_index_of(site_addr) else {
            continue;
        };
        for k in 0..site.symbols as usize {
            let word = image.text[start + k];
            let symbol = decode_guard_symbol(word);
            match next_bits(SALT_BITS_PER_WORD) {
                Some(salt) => {
                    // salt is one payload nibble: the two low bits land in
                    // the free rt bits, the two high bits pick the opcode
                    // (selectors 0..4, losslessly recoverable).
                    image.text[start + k] = encode_guard_inst(symbol, salt).encode();
                }
                None => break 'sites,
            }
        }
    }
    let _ = bit;
    Ok(())
}

/// Extracts `payload_len` bytes embedded by [`embed`].
///
/// Returns `None` when the image's guard words do not carry a payload of
/// that length (e.g. never watermarked, or sites missing).
pub fn extract(image: &Image, config: &SecMonConfig, payload_len: usize) -> Option<Vec<u8>> {
    let mut bits: Vec<u8> = Vec::new();
    for (&site_addr, site) in &config.sites {
        let start = image.text_index_of(site_addr)?;
        for k in 0..site.symbols as usize {
            let word = image.text[start + k];
            for b in 0..SALT_BITS_PER_WORD {
                bits.push((salt_of_word(word) >> b) & 1);
            }
            if bits.len() >= payload_len * 8 {
                let mut out = vec![0u8; payload_len];
                for (i, bit) in bits.iter().take(payload_len * 8).enumerate() {
                    out[i / 8] |= bit << (i % 8);
                }
                return Some(out);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::guards::{insert_guards, GuardConfig};
    use flexprot_secmon::SecMon;
    use flexprot_sim::{Machine, Outcome, SimConfig};

    const SRC: &str = r#"
main:   li   $s0, 0
        li   $t0, 12
loop:   addu $s0, $s0, $t0
        addi $t0, $t0, -1
        bgtz $t0, loop
        move $a0, $s0
        li   $v0, 1
        syscall
        li   $v0, 10
        syscall
"#;

    fn guarded() -> (crate::guards::GuardOutcome, SecMonConfig) {
        let image = flexprot_asm::assemble_or_panic(SRC);
        let out = insert_guards(&image, &GuardConfig::with_density(1.0), None).unwrap();
        let config = out.secmon_config();
        (out, config)
    }

    #[test]
    fn capacity_matches_site_count() {
        let (_, config) = guarded();
        assert_eq!(
            capacity_bits(&config),
            config.site_count() as u32 * 4 * SALT_BITS_PER_WORD
        );
        assert!(capacity_bits(&config) >= 16);
    }

    #[test]
    fn embed_extract_round_trip() {
        let (out, config) = guarded();
        let payload = b"WM";
        let mut image = out.image.clone();
        embed(&mut image, &config, payload).unwrap();
        assert_eq!(extract(&image, &config, 2).as_deref(), Some(&payload[..]));
    }

    #[test]
    fn watermarked_binary_still_runs_and_verifies() {
        let (out, config) = guarded();
        let baseline = {
            let monitor = SecMon::new(config.clone());
            Machine::with_monitor(&out.image, SimConfig::default(), monitor)
                .run()
                .output
        };
        let mut image = out.image.clone();
        embed(&mut image, &config, b"A").unwrap();
        let monitor = SecMon::new(config.clone());
        let mut machine = Machine::with_monitor(&image, SimConfig::default(), monitor);
        let run = machine.run();
        assert_eq!(run.outcome, Outcome::Exit(0), "{:?}", run.outcome);
        assert_eq!(run.output, baseline);
        assert!(machine.monitor().checks_passed() > 0);
        assert!(machine.monitor().tamper_log().is_empty());
    }

    #[test]
    fn oversized_payload_rejected() {
        let (out, config) = guarded();
        let too_big = vec![0u8; (capacity_bits(&config) / 8 + 1) as usize];
        let mut image = out.image.clone();
        assert!(matches!(
            embed(&mut image, &config, &too_big),
            Err(ProtectError::BadConfig(_))
        ));
    }

    #[test]
    fn distinct_payloads_yield_distinct_binaries() {
        let (out, config) = guarded();
        let mut a = out.image.clone();
        let mut b = out.image.clone();
        embed(&mut a, &config, b"x").unwrap();
        embed(&mut b, &config, b"y").unwrap();
        assert_ne!(a.text, b.text);
        assert_eq!(extract(&a, &config, 1).as_deref(), Some(&b"x"[..]));
        assert_eq!(extract(&b, &config, 1).as_deref(), Some(&b"y"[..]));
    }
}
