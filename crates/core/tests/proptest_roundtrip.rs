//! Property tests for the protection transforms themselves (as opposed to
//! their run-time semantics, covered by `proptest_protection.rs`):
//!
//! * encrypt → decrypt is the identity on the text section at **every**
//!   keying granularity, for many random keys;
//! * guard insertion at **any** random density yields an artifact the
//!   independent static verifier (`fplint`'s engine) accepts as clean.
//!
//! Driven by the in-repo deterministic PRNG; ≥64 seeds per property.

use flexprot_core::{
    protect, EncryptConfig, Granularity, GuardConfig, Placement, ProtectionConfig, Selection,
};
use flexprot_isa::Rng64;
use flexprot_secmon::DecryptModel;
use flexprot_verify::{decrypt_text, verify};

const PROGRAM: &str = r#"
        .data
tab:    .space 32
        .text
main:   li   $s0, 8
        la   $s1, tab
        li   $s2, 3
seed:   sw   $s2, 0($s1)
        jal  mix
        addi $s1, $s1, 4
        addi $s0, $s0, -1
        bgtz $s0, seed
        jal  sum
        move $a0, $v0
        li   $v0, 34
        syscall
        li   $v0, 10
        syscall
mix:    lw   $t0, 0($s1)
        sll  $t1, $t0, 5
        xor  $t0, $t0, $t1
        addi $t0, $t0, 77
        sw   $t0, 0($s1)
        move $s2, $t0
        jr   $ra
sum:    la   $t0, tab
        li   $t1, 8
        li   $v0, 0
sloop:  lw   $t2, 0($t0)
        addu $v0, $v0, $t2
        addi $t0, $t0, 4
        addi $t1, $t1, -1
        bgtz $t1, sloop
        jr   $ra
"#;

fn image() -> flexprot_isa::Image {
    flexprot_asm::assemble_or_panic(PROGRAM)
}

/// Encrypting then decrypting through the monitor's region table restores
/// the exact original text, at every granularity and for 64 random keys
/// and latency models each.
#[test]
fn encrypt_decrypt_is_identity_at_every_granularity() {
    let image = image();
    for granularity in [
        Granularity::Program,
        Granularity::Function,
        Granularity::Block,
    ] {
        let mut rng = Rng64::new(0x1D_0001 ^ granularity as u64);
        for round in 0..64 {
            let config = ProtectionConfig::new().with_encryption(EncryptConfig {
                master_key: rng.next_u64(),
                granularity,
                model: DecryptModel {
                    cycles_per_word: rng.below(16),
                    startup: rng.below(8),
                    pipelined: rng.chance(0.5),
                },
                scope: None,
            });
            let protected = protect(&image, &config, None).expect("protect");
            assert!(
                protected.report.encrypted_regions > 0,
                "{granularity:?}/{round}: nothing was encrypted"
            );
            assert_ne!(
                protected.image.text, image.text,
                "{granularity:?}/{round}: ciphertext equals plaintext"
            );
            assert_eq!(
                decrypt_text(&protected.image, &protected.secmon),
                image.text,
                "{granularity:?}/{round}: decrypt is not the inverse"
            );
        }
    }
}

/// Guard insertion at any random density/placement/seed produces an
/// artifact the independent static verifier reports clean.
#[test]
fn guard_insertion_lints_clean_at_random_densities() {
    let image = image();
    let mut rng = Rng64::new(0x1D_0002);
    for round in 0..64 {
        let placement = match rng.below(4) {
            0 => Placement::Uniform,
            1 => Placement::Random,
            2 => Placement::ColdestFirst,
            _ => Placement::LoopHeaders,
        };
        let config = ProtectionConfig::new().with_guards(GuardConfig {
            key: rng.next_u64(),
            seed: rng.next_u64(),
            placement,
            selection: Selection::Density(rng.next_f64()),
            enforce_spacing: rng.chance(0.5),
        });
        let protected = protect(&image, &config, None).expect("protect");
        let report = verify(&protected.image, &protected.secmon);
        assert!(
            report.is_clean(),
            "round {round} ({placement:?}): verifier found defects:\n{}",
            report.render_human()
        );
    }
}

/// The combined pipeline also survives both checks: decrypting the
/// shipped ciphertext yields exactly the guarded plaintext the verifier
/// accepts.
#[test]
fn combined_pipeline_roundtrips_and_lints_clean() {
    let image = image();
    let mut rng = Rng64::new(0x1D_0003);
    for round in 0..64 {
        let key = rng.next_u64();
        let granularity = match rng.below(3) {
            0 => Granularity::Program,
            1 => Granularity::Function,
            _ => Granularity::Block,
        };
        let config = ProtectionConfig::new()
            .with_guards(GuardConfig {
                key,
                seed: rng.next_u64(),
                ..GuardConfig::with_density(rng.next_f64())
            })
            .with_encryption(EncryptConfig {
                granularity,
                ..EncryptConfig::whole_program(key.rotate_left(23))
            });
        let protected = protect(&image, &config, None).expect("protect");
        let report = verify(&protected.image, &protected.secmon);
        assert!(
            report.is_clean(),
            "round {round}: verifier found defects:\n{}",
            report.render_human()
        );
        // Decrypt must restore *some* plaintext whose length matches the
        // guarded layout; every decrypted word must decode or be a guard
        // signature word (the verifier checked this in detail above).
        let plaintext = decrypt_text(&protected.image, &protected.secmon);
        assert_eq!(plaintext.len(), protected.image.text.len());
        if protected.report.encrypted_regions > 0 {
            assert_ne!(plaintext, protected.image.text, "round {round}");
        }
    }
}
