//! Property tests for the protection passes: **semantic preservation under
//! arbitrary configurations** — the invariant everything else rests on.
//! Driven by the in-repo deterministic PRNG.

use flexprot_core::{
    protect, EncryptConfig, Granularity, GuardConfig, Placement, ProtectionConfig, Selection,
};
use flexprot_isa::Rng64;
use flexprot_secmon::DecryptModel;
use flexprot_sim::{Machine, Outcome, SimConfig};

const PROGRAM: &str = r#"
        .data
buf:    .space 64
        .text
main:   li   $s0, 16
        li   $s1, 1          # LCG-ish state
        la   $s2, buf
mloop:  li   $t8, 2531011
        mul  $s1, $s1, $t8
        addi $s1, $s1, 13849
        andi $t0, $s1, 0xFF
        sw   $t0, 0($s2)
        jal  twist
        addi $s2, $s2, 4
        addi $s0, $s0, -1
        bgtz $s0, mloop
        jal  fold
        move $a0, $v0
        li   $v0, 34
        syscall
        li   $v0, 10
        syscall
twist:  lw   $t1, 0($s2)
        sll  $t2, $t1, 3
        xor  $t1, $t1, $t2
        sw   $t1, 0($s2)
        jr   $ra
fold:   la   $t0, buf
        li   $t1, 16
        li   $v0, 0
floop:  lw   $t2, 0($t0)
        addu $v0, $v0, $t2
        addi $t0, $t0, 4
        addi $t1, $t1, -1
        bgtz $t1, floop
        jr   $ra
"#;

fn baseline() -> (flexprot_isa::Image, String) {
    let image = flexprot_asm::assemble_or_panic(PROGRAM);
    let r = Machine::new(&image, SimConfig::default()).run();
    assert_eq!(r.outcome, Outcome::Exit(0));
    (image, r.output)
}

fn arb_placement(rng: &mut Rng64) -> Placement {
    match rng.below(4) {
        0 => Placement::Uniform,
        1 => Placement::Random,
        2 => Placement::ColdestFirst,
        _ => Placement::LoopHeaders,
    }
}

fn arb_granularity(rng: &mut Rng64) -> Granularity {
    match rng.below(3) {
        0 => Granularity::Program,
        1 => Granularity::Function,
        _ => Granularity::Block,
    }
}

/// Guards at any density/placement/seed/key preserve program output,
/// and the monitor never false-positives on an untampered binary.
#[test]
fn guards_preserve_semantics() {
    let (image, expected) = baseline();
    let mut rng = Rng64::new(0xC02E_0001);
    for _ in 0..48 {
        let config = ProtectionConfig::new().with_guards(GuardConfig {
            key: rng.next_u64(),
            seed: rng.next_u64(),
            placement: arb_placement(&mut rng),
            selection: Selection::Density(rng.next_f64()),
            enforce_spacing: rng.chance(0.5),
        });
        let protected = protect(&image, &config, None).expect("protect");
        let r = protected.run(SimConfig::default());
        assert_eq!(r.outcome, Outcome::Exit(0));
        assert_eq!(r.output, expected);
    }
}

/// Encryption at any granularity/key/latency model round-trips through
/// the fetch path.
#[test]
fn encryption_preserves_semantics() {
    let (image, expected) = baseline();
    let mut rng = Rng64::new(0xC02E_0002);
    for _ in 0..48 {
        let config = ProtectionConfig::new().with_encryption(EncryptConfig {
            master_key: rng.next_u64(),
            granularity: arb_granularity(&mut rng),
            model: DecryptModel {
                cycles_per_word: rng.below(16),
                startup: rng.below(16),
                pipelined: rng.chance(0.5),
            },
            scope: None,
        });
        let protected = protect(&image, &config, None).expect("protect");
        let r = protected.run(SimConfig::default());
        assert_eq!(r.outcome, Outcome::Exit(0));
        assert_eq!(r.output, expected);
    }
}

/// Both layers combined preserve semantics, and cycles never decrease
/// relative to baseline.
#[test]
fn combined_layers_preserve_semantics() {
    let (image, expected) = baseline();
    let base_cycles = Machine::new(&image, SimConfig::default())
        .run()
        .stats
        .cycles;
    let mut rng = Rng64::new(0xC02E_0003);
    for _ in 0..48 {
        let key = rng.next_u64();
        let config = ProtectionConfig::new()
            .with_guards(GuardConfig {
                key,
                ..GuardConfig::with_density(rng.next_f64())
            })
            .with_encryption(EncryptConfig {
                granularity: arb_granularity(&mut rng),
                ..EncryptConfig::whole_program(key.rotate_left(17))
            });
        let protected = protect(&image, &config, None).expect("protect");
        let r = protected.run(SimConfig::default());
        assert_eq!(r.outcome, Outcome::Exit(0));
        assert_eq!(r.output, expected);
        assert!(r.stats.cycles >= base_cycles);
    }
}

/// Static size overhead is exactly `guards * SIG_SYMBOLS` words.
#[test]
fn size_overhead_is_exact() {
    let (image, _) = baseline();
    let mut rng = Rng64::new(0xC02E_0004);
    for _ in 0..48 {
        let config = ProtectionConfig::new().with_guards(GuardConfig {
            seed: rng.next_u64(),
            ..GuardConfig::with_density(rng.next_f64())
        });
        let protected = protect(&image, &config, None).expect("protect");
        assert_eq!(
            protected.image.text.len(),
            image.text.len()
                + protected.report.guards_inserted * flexprot_secmon::SIG_SYMBOLS as usize
        );
    }
}
