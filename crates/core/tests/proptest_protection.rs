//! Property tests for the protection passes: **semantic preservation under
//! arbitrary configurations** — the invariant everything else rests on.

use flexprot_core::{
    protect, EncryptConfig, Granularity, GuardConfig, Placement, ProtectionConfig, Selection,
};
use flexprot_secmon::DecryptModel;
use flexprot_sim::{Machine, Outcome, SimConfig};
use proptest::prelude::*;

const PROGRAM: &str = r#"
        .data
buf:    .space 64
        .text
main:   li   $s0, 16
        li   $s1, 1          # LCG-ish state
        la   $s2, buf
mloop:  li   $t8, 2531011
        mul  $s1, $s1, $t8
        addi $s1, $s1, 13849
        andi $t0, $s1, 0xFF
        sw   $t0, 0($s2)
        jal  twist
        addi $s2, $s2, 4
        addi $s0, $s0, -1
        bgtz $s0, mloop
        jal  fold
        move $a0, $v0
        li   $v0, 34
        syscall
        li   $v0, 10
        syscall
twist:  lw   $t1, 0($s2)
        sll  $t2, $t1, 3
        xor  $t1, $t1, $t2
        sw   $t1, 0($s2)
        jr   $ra
fold:   la   $t0, buf
        li   $t1, 16
        li   $v0, 0
floop:  lw   $t2, 0($t0)
        addu $v0, $v0, $t2
        addi $t0, $t0, 4
        addi $t1, $t1, -1
        bgtz $t1, floop
        jr   $ra
"#;

fn baseline() -> (flexprot_isa::Image, String) {
    let image = flexprot_asm::assemble_or_panic(PROGRAM);
    let r = Machine::new(&image, SimConfig::default()).run();
    assert_eq!(r.outcome, Outcome::Exit(0));
    (image, r.output)
}

fn arb_placement() -> impl Strategy<Value = Placement> {
    prop_oneof![
        Just(Placement::Uniform),
        Just(Placement::Random),
        Just(Placement::ColdestFirst),
        Just(Placement::LoopHeaders),
    ]
}

fn arb_granularity() -> impl Strategy<Value = Granularity> {
    prop_oneof![
        Just(Granularity::Program),
        Just(Granularity::Function),
        Just(Granularity::Block),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Guards at any density/placement/seed/key preserve program output,
    /// and the monitor never false-positives on an untampered binary.
    #[test]
    fn guards_preserve_semantics(
        density in 0.0f64..=1.0,
        placement in arb_placement(),
        seed in any::<u64>(),
        key in any::<u64>(),
        enforce_spacing in any::<bool>(),
    ) {
        let (image, expected) = baseline();
        let config = ProtectionConfig::new().with_guards(GuardConfig {
            key,
            seed,
            placement,
            selection: Selection::Density(density),
            enforce_spacing,
        });
        let protected = protect(&image, &config, None).expect("protect");
        let r = protected.run(SimConfig::default());
        prop_assert_eq!(&r.outcome, &Outcome::Exit(0), "{:?}", r.outcome);
        prop_assert_eq!(r.output, expected);
    }

    /// Encryption at any granularity/key/latency model round-trips through
    /// the fetch path.
    #[test]
    fn encryption_preserves_semantics(
        master_key in any::<u64>(),
        granularity in arb_granularity(),
        cycles_per_word in 0u64..16,
        startup in 0u64..16,
        pipelined in any::<bool>(),
    ) {
        let (image, expected) = baseline();
        let config = ProtectionConfig::new().with_encryption(EncryptConfig {
            master_key,
            granularity,
            model: DecryptModel { cycles_per_word, startup, pipelined },
            scope: None,
        });
        let protected = protect(&image, &config, None).expect("protect");
        let r = protected.run(SimConfig::default());
        prop_assert_eq!(&r.outcome, &Outcome::Exit(0), "{:?}", r.outcome);
        prop_assert_eq!(r.output, expected);
    }

    /// Both layers combined preserve semantics, and cycles never decrease
    /// relative to baseline.
    #[test]
    fn combined_layers_preserve_semantics(
        density in 0.0f64..=1.0,
        key in any::<u64>(),
        granularity in arb_granularity(),
    ) {
        let (image, expected) = baseline();
        let base_cycles = Machine::new(&image, SimConfig::default()).run().stats.cycles;
        let config = ProtectionConfig::new()
            .with_guards(GuardConfig { key, ..GuardConfig::with_density(density) })
            .with_encryption(EncryptConfig {
                granularity,
                ..EncryptConfig::whole_program(key.rotate_left(17))
            });
        let protected = protect(&image, &config, None).expect("protect");
        let r = protected.run(SimConfig::default());
        prop_assert_eq!(&r.outcome, &Outcome::Exit(0), "{:?}", r.outcome);
        prop_assert_eq!(r.output, expected);
        prop_assert!(r.stats.cycles >= base_cycles);
    }

    /// Static size overhead is exactly `guards * SIG_SYMBOLS` words.
    #[test]
    fn size_overhead_is_exact(density in 0.0f64..=1.0, seed in any::<u64>()) {
        let (image, _) = baseline();
        let config = ProtectionConfig::new().with_guards(GuardConfig {
            seed,
            ..GuardConfig::with_density(density)
        });
        let protected = protect(&image, &config, None).expect("protect");
        prop_assert_eq!(
            protected.image.text.len(),
            image.text.len()
                + protected.report.guards_inserted * flexprot_secmon::SIG_SYMBOLS as usize
        );
    }
}
