//! Named counters and latency histograms.
//!
//! The registry is deliberately schema-free: producers bump counters by
//! name and record latencies into named histograms, and the JSON emission
//! (`flexprot-metrics-v1`) lists whatever was recorded. Consumers that
//! need stability assert on the counter *names*, which are fixed by the
//! [`crate::Recorder`] aggregation rules.

use std::collections::BTreeMap;

use crate::json::JsonObject;

/// Schema tag stamped into every metrics document.
pub const METRICS_SCHEMA: &str = "flexprot-metrics-v1";

/// A log2-bucketed latency histogram.
///
/// Bucket `i` counts samples with `value.ilog2() == i` (bucket 0 also
/// takes zeros), which is plenty of resolution for cycle-latency shapes
/// while keeping the registry allocation-light.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Histogram {
    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let bucket = if value <= 1 {
            0
        } else {
            (63 - value.leading_zeros()) as usize
        };
        if self.buckets.len() <= bucket {
            self.buckets.resize(bucket + 1, 0);
        }
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum += value;
        self.max = self.max.max(value);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest sample seen (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Bucket counts, index `i` covering `[2^i, 2^(i+1))` (bucket 0 also
    /// holds zeros and ones).
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Merges another histogram into this one bucket-wise.
    ///
    /// The operation is commutative and associative, so per-job histograms
    /// can be folded into an aggregate in any order — the property the
    /// parallel execution engine relies on for deterministic output.
    pub fn merge(&mut self, other: &Histogram) {
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    fn to_json(&self) -> String {
        let mut obj = JsonObject::new();
        obj.num("count", self.count)
            .num("sum", self.sum)
            .num("max", self.max);
        let buckets: Vec<String> = self.buckets.iter().map(u64::to_string).collect();
        obj.raw("log2_buckets", &format!("[{}]", buckets.join(",")));
        obj.finish()
    }
}

/// Registry of named counters and histograms.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Metrics {
    counters: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

impl Metrics {
    /// An empty registry.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Adds `delta` to the named counter, creating it at zero.
    pub fn add(&mut self, name: &'static str, delta: u64) {
        *self.counters.entry(name).or_insert(0) += delta;
    }

    /// Increments the named counter by one.
    pub fn incr(&mut self, name: &'static str) {
        self.add(name, 1);
    }

    /// Sets the named counter to an absolute value.
    pub fn set(&mut self, name: &'static str, value: u64) {
        self.counters.insert(name, value);
    }

    /// Current value of a counter (0 when never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Records one latency sample into the named histogram.
    pub fn observe(&mut self, name: &'static str, value: u64) {
        self.histograms.entry(name).or_default().record(value);
    }

    /// The named histogram, if any samples were recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(name, value)| (*name, *value))
    }

    /// Merges another registry into this one: counters add, histograms
    /// merge bucket-wise.
    ///
    /// Addition is commutative, so folding N per-job registries into one
    /// aggregate yields the same document whatever order the jobs finished
    /// in. Note that `set`-style absolute counters (the `sim_*`
    /// reconciliation set) become sums under merge, which is the intended
    /// aggregate reading (total cycles, total instructions, …).
    pub fn merge(&mut self, other: &Metrics) {
        for (name, value) in &other.counters {
            *self.counters.entry(name).or_insert(0) += value;
        }
        for (name, histogram) in &other.histograms {
            self.histograms.entry(name).or_default().merge(histogram);
        }
    }

    /// Renders the `flexprot-metrics-v1` document.
    pub fn to_json(&self) -> String {
        let mut counters = JsonObject::new();
        for (name, value) in &self.counters {
            counters.num(name, *value);
        }
        let mut histograms = JsonObject::new();
        for (name, histogram) in &self.histograms {
            histograms.raw(name, &histogram.to_json());
        }
        let mut root = JsonObject::new();
        root.str("schema", METRICS_SCHEMA)
            .raw("counters", &counters.finish())
            .raw("histograms", &histograms.finish());
        root.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn histogram_buckets_by_log2() {
        let mut h = Histogram::default();
        for v in [0, 1, 2, 3, 4, 7, 8, 1024] {
            h.record(v);
        }
        assert_eq!(h.count(), 8);
        assert_eq!(h.sum(), 1049);
        assert_eq!(h.max(), 1024);
        // zeros+ones → bucket 0; 2,3 → bucket 1; 4..7 → bucket 2; 8 → 3; 1024 → 10.
        assert_eq!(h.buckets()[0], 2);
        assert_eq!(h.buckets()[1], 2);
        assert_eq!(h.buckets()[2], 2);
        assert_eq!(h.buckets()[3], 1);
        assert_eq!(h.buckets()[10], 1);
        assert!((h.mean() - 1049.0 / 8.0).abs() < 1e-9);
    }

    #[test]
    fn counters_accumulate_and_default_to_zero() {
        let mut m = Metrics::new();
        m.incr("a");
        m.add("a", 4);
        m.set("b", 7);
        assert_eq!(m.counter("a"), 5);
        assert_eq!(m.counter("b"), 7);
        assert_eq!(m.counter("missing"), 0);
    }

    #[test]
    fn histogram_merge_is_commutative() {
        let mut a = Histogram::default();
        for v in [0, 3, 8] {
            a.record(v);
        }
        let mut b = Histogram::default();
        for v in [1, 1024] {
            b.record(v);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.count(), 5);
        assert_eq!(ab.sum(), 1036);
        assert_eq!(ab.max(), 1024);
        let mut direct = Histogram::default();
        for v in [0, 3, 8, 1, 1024] {
            direct.record(v);
        }
        assert_eq!(ab, direct);
    }

    #[test]
    fn metrics_merge_adds_counters_and_histograms() {
        let mut a = Metrics::new();
        a.add("cycles", 10);
        a.observe("lat", 4);
        let mut b = Metrics::new();
        b.add("cycles", 5);
        b.incr("jobs");
        b.observe("lat", 16);
        a.merge(&b);
        assert_eq!(a.counter("cycles"), 15);
        assert_eq!(a.counter("jobs"), 1);
        let h = a.histogram("lat").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 20);
    }

    #[test]
    fn merge_order_yields_identical_json() {
        let mk = |x: u64| {
            let mut m = Metrics::new();
            m.add("n", x);
            m.observe("h", x);
            m
        };
        let parts = [mk(1), mk(2), mk(3)];
        let mut fwd = Metrics::new();
        for p in &parts {
            fwd.merge(p);
        }
        let mut rev = Metrics::new();
        for p in parts.iter().rev() {
            rev.merge(p);
        }
        assert_eq!(fwd.to_json(), rev.to_json());
    }

    #[test]
    fn json_document_has_stable_schema() {
        let mut m = Metrics::new();
        m.add("cycles", 100);
        m.observe("decrypt_stall_cycles", 20);
        m.observe("decrypt_stall_cycles", 24);
        let doc = m.to_json();
        let value = json::parse(&doc).unwrap();
        assert_eq!(
            value.get("schema").and_then(json::Value::as_str),
            Some(METRICS_SCHEMA)
        );
        let counters = value.get("counters").unwrap();
        assert_eq!(
            counters.get("cycles").and_then(json::Value::as_u64),
            Some(100)
        );
        let hist = value
            .get("histograms")
            .and_then(|h| h.get("decrypt_stall_cycles"))
            .unwrap();
        assert_eq!(hist.get("count").and_then(json::Value::as_u64), Some(2));
        assert_eq!(hist.get("sum").and_then(json::Value::as_u64), Some(44));
    }
}
