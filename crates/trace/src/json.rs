//! Minimal JSON emission and parsing.
//!
//! The workspace builds offline with no external crates, so the metrics
//! and trace files are produced by a small hand-rolled writer and checked
//! (in CI and tests) by an equally small recursive-descent parser. Only
//! the subset of JSON the emitters produce is exercised, but the parser
//! accepts any well-formed document.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Escapes a string for embedding in a JSON document (adds no quotes).
pub fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for ch in text.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Incremental writer for one flat JSON object.
#[derive(Debug, Default)]
pub struct JsonObject {
    buf: String,
    any: bool,
}

impl JsonObject {
    /// Starts an empty object.
    pub fn new() -> Self {
        JsonObject {
            buf: String::from("{"),
            any: false,
        }
    }

    fn key(&mut self, name: &str) {
        if self.any {
            self.buf.push(',');
        }
        self.any = true;
        let _ = write!(self.buf, "\"{}\":", escape(name));
    }

    /// Adds a string field.
    pub fn str(&mut self, name: &str, value: &str) -> &mut Self {
        self.key(name);
        let _ = write!(self.buf, "\"{}\"", escape(value));
        self
    }

    /// Adds an unsigned integer field.
    pub fn num(&mut self, name: &str, value: u64) -> &mut Self {
        self.key(name);
        let _ = write!(self.buf, "{value}");
        self
    }

    /// Adds a boolean field.
    pub fn bool(&mut self, name: &str, value: bool) -> &mut Self {
        self.key(name);
        let _ = write!(self.buf, "{value}");
        self
    }

    /// Adds an address rendered as a `0x%08x` string (stable across JSON
    /// integer-width quirks in downstream tooling).
    pub fn hex(&mut self, name: &str, value: u32) -> &mut Self {
        self.key(name);
        let _ = write!(self.buf, "\"0x{value:08x}\"");
        self
    }

    /// Adds a pre-rendered JSON value verbatim.
    pub fn raw(&mut self, name: &str, value: &str) -> &mut Self {
        self.key(name);
        self.buf.push_str(value);
        self
    }

    /// Closes the object and returns the document.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (kept as f64; integers up to 2^53 are exact).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object (key order normalised).
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// String payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Unsigned-integer payload, if this is a non-negative whole number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 9.007_199_254_740_992e15 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// Float payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// Object payload, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(map) => Some(map),
            _ => None,
        }
    }

    /// Array payload, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, ch: u8) -> Result<(), String> {
    skip_ws(bytes, pos);
    if *pos < bytes.len() && bytes[*pos] == ch {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {}", ch as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Value::String(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Value::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    if matches!(bytes.get(*pos), Some(b'-')) {
        *pos += 1;
    }
    while matches!(
        bytes.get(*pos),
        Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    ) {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Value::Number)
        .map_err(|_| format!("invalid number `{text}` at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Copy one UTF-8 scalar (input is a &str, so boundaries align).
                let rest = &bytes[*pos..];
                let text = unsafe { std::str::from_utf8_unchecked(rest) };
                let ch = text.chars().next().unwrap();
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if matches!(bytes.get(*pos), Some(b'}')) {
        *pos += 1;
        return Ok(Value::Object(map));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        map.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Object(map));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if matches!(bytes.get(*pos), Some(b']')) {
        *pos += 1;
        return Ok(Value::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_writer_roundtrips_through_parser() {
        let mut obj = JsonObject::new();
        obj.str("name", "guard \"x\"\n")
            .num("count", 42)
            .bool("ok", true)
            .hex("pc", 0x400010)
            .raw("list", "[1,2,3]");
        let doc = obj.finish();
        let value = parse(&doc).unwrap();
        assert_eq!(
            value.get("name").and_then(Value::as_str),
            Some("guard \"x\"\n")
        );
        assert_eq!(value.get("count").and_then(Value::as_u64), Some(42));
        assert_eq!(value.get("ok"), Some(&Value::Bool(true)));
        assert_eq!(value.get("pc").and_then(Value::as_str), Some("0x00400010"));
        assert_eq!(
            value.get("list").and_then(Value::as_array).map(<[_]>::len),
            Some(3)
        );
    }

    #[test]
    fn parser_handles_nesting_and_whitespace() {
        let value = parse(" { \"a\" : { \"b\" : [ 1 , -2.5 , null , false ] } } ").unwrap();
        let inner = value.get("a").and_then(|a| a.get("b")).unwrap();
        let items = inner.as_array().unwrap();
        assert_eq!(items[0].as_u64(), Some(1));
        assert_eq!(items[1].as_f64(), Some(-2.5));
        assert_eq!(items[2], Value::Null);
        assert_eq!(items[3], Value::Bool(false));
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("{\"a\":1} extra").is_err());
        assert!(parse("[1,2").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn unicode_escapes_decode() {
        let value = parse("\"a\\u0041\\u00e9\"").unwrap();
        assert_eq!(value.as_str(), Some("aAé"));
    }

    #[test]
    fn empty_containers() {
        assert_eq!(parse("{}").unwrap(), Value::Object(BTreeMap::new()));
        assert_eq!(parse("[]").unwrap(), Value::Array(Vec::new()));
    }
}
