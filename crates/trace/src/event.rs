//! The event taxonomy every instrumented component reports through.
//!
//! Each variant is one observation point of the codesign architecture:
//! the fetch path and caches (from `flexprot-sim`), the secure monitor's
//! guard machinery and decryption unit (from `flexprot-secmon`), and the
//! protection toolchain itself (from `flexprot-core`). Events are small
//! `Copy` values so the enabled path stays cheap and the disabled path
//! (no sink attached) costs one branch.

use crate::json::JsonObject;

/// One observability event.
///
/// See the crate docs for the taxonomy; producers are named per variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// An instruction fetch probed the I-cache (simulator; one per
    /// committed-or-blocked instruction).
    Fetch {
        /// Fetch address.
        pc: u32,
        /// Whether the I-cache hit.
        hit: bool,
    },
    /// An I-cache miss filled a line (simulator). `decrypt_cycles` is the
    /// monitor's fill penalty — the decryption-unit latency attribution —
    /// and `fill_cycles` the plain memory burst.
    IcacheFill {
        /// Line base address.
        line_addr: u32,
        /// Words per line.
        words: u32,
        /// Memory-path cycles (miss latency + burst).
        fill_cycles: u64,
        /// Monitor stall cycles charged on this fill (decryption hardware).
        decrypt_cycles: u64,
    },
    /// The monitor's decryption unit processed a line fill (secure
    /// monitor; functional attribution of *which* words were ciphertext).
    Decrypt {
        /// Line base address.
        line_addr: u32,
        /// Encrypted words in the line.
        encrypted_words: u32,
        /// Cycles the decryption unit charged.
        cycles: u64,
    },
    /// A load or store probed the D-cache (simulator).
    DataAccess {
        /// Effective address.
        addr: u32,
        /// Store (`true`) or load.
        write: bool,
        /// Whether the D-cache hit.
        hit: bool,
        /// Whether a dirty line was written back.
        writeback: bool,
    },
    /// An instruction committed (simulator; after the monitor cleared it).
    Commit {
        /// Committed pc.
        pc: u32,
    },
    /// A guard window opened: the stream hash reset at a registered
    /// window-start address (secure monitor).
    WindowOpen {
        /// The window-start pc.
        pc: u32,
    },
    /// A guard window closed: execution reached its guard site and the
    /// signature-collection phase began (secure monitor).
    WindowClose {
        /// First guard-word address.
        site: u32,
    },
    /// A guard signature check passed (secure monitor).
    GuardPass {
        /// Guard site address.
        site: u32,
    },
    /// A guard check failed: signature mismatch, malformed guard word or
    /// interrupted sequence (secure monitor).
    GuardFail {
        /// Guard site address.
        site: u32,
        /// The pc that tripped the failure.
        pc: u32,
    },
    /// The spacing counter ticked on a protected-region instruction
    /// (secure monitor).
    SpacingTick {
        /// The counted pc.
        pc: u32,
        /// Counter value after the tick.
        count: u64,
    },
    /// The spacing bound was exceeded — a guard-stripping symptom (secure
    /// monitor).
    SpacingExceeded {
        /// The pc at which the bound was exceeded.
        pc: u32,
        /// The provisioned bound.
        bound: u64,
    },
    /// The toolchain inserted a guard sequence (protection pipeline).
    GuardInsert {
        /// Guard site address in the rewritten image.
        site: u32,
    },
    /// The toolchain embedded a watermark payload in the guard salt
    /// channel (protection pipeline).
    Watermark {
        /// Payload length in bytes.
        bytes: u32,
    },
    /// The simulation finished; final counter values from [`flexprot-sim`]'s
    /// own `Stats`, for reconciliation against the event-derived counters.
    RunEnd {
        /// Total simulated cycles.
        cycles: u64,
        /// Committed instructions.
        instructions: u64,
        /// I-cache misses.
        icache_misses: u64,
        /// D-cache misses.
        dcache_misses: u64,
        /// Monitor fill-penalty cycles.
        monitor_fill_cycles: u64,
    },
}

impl TraceEvent {
    /// Stable, machine-readable event-kind name (the JSONL `ev` field).
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::Fetch { .. } => "fetch",
            TraceEvent::IcacheFill { .. } => "icache_fill",
            TraceEvent::Decrypt { .. } => "decrypt",
            TraceEvent::DataAccess { .. } => "data_access",
            TraceEvent::Commit { .. } => "commit",
            TraceEvent::WindowOpen { .. } => "window_open",
            TraceEvent::WindowClose { .. } => "window_close",
            TraceEvent::GuardPass { .. } => "guard_pass",
            TraceEvent::GuardFail { .. } => "guard_fail",
            TraceEvent::SpacingTick { .. } => "spacing_tick",
            TraceEvent::SpacingExceeded { .. } => "spacing_exceeded",
            TraceEvent::GuardInsert { .. } => "guard_insert",
            TraceEvent::Watermark { .. } => "watermark",
            TraceEvent::RunEnd { .. } => "run_end",
        }
    }

    /// Renders the event as one JSONL line (no trailing newline).
    pub fn to_jsonl(&self) -> String {
        let mut obj = JsonObject::new();
        obj.str("ev", self.kind());
        match *self {
            TraceEvent::Fetch { pc, hit } => {
                obj.hex("pc", pc).bool("hit", hit);
            }
            TraceEvent::IcacheFill {
                line_addr,
                words,
                fill_cycles,
                decrypt_cycles,
            } => {
                obj.hex("line", line_addr)
                    .num("words", u64::from(words))
                    .num("fill_cycles", fill_cycles)
                    .num("decrypt_cycles", decrypt_cycles);
            }
            TraceEvent::Decrypt {
                line_addr,
                encrypted_words,
                cycles,
            } => {
                obj.hex("line", line_addr)
                    .num("encrypted_words", u64::from(encrypted_words))
                    .num("cycles", cycles);
            }
            TraceEvent::DataAccess {
                addr,
                write,
                hit,
                writeback,
            } => {
                obj.hex("addr", addr)
                    .bool("write", write)
                    .bool("hit", hit)
                    .bool("writeback", writeback);
            }
            TraceEvent::Commit { pc } => {
                obj.hex("pc", pc);
            }
            TraceEvent::WindowOpen { pc } => {
                obj.hex("pc", pc);
            }
            TraceEvent::WindowClose { site } => {
                obj.hex("site", site);
            }
            TraceEvent::GuardPass { site } => {
                obj.hex("site", site);
            }
            TraceEvent::GuardFail { site, pc } => {
                obj.hex("site", site).hex("pc", pc);
            }
            TraceEvent::SpacingTick { pc, count } => {
                obj.hex("pc", pc).num("count", count);
            }
            TraceEvent::SpacingExceeded { pc, bound } => {
                obj.hex("pc", pc).num("bound", bound);
            }
            TraceEvent::GuardInsert { site } => {
                obj.hex("site", site);
            }
            TraceEvent::Watermark { bytes } => {
                obj.num("bytes", u64::from(bytes));
            }
            TraceEvent::RunEnd {
                cycles,
                instructions,
                icache_misses,
                dcache_misses,
                monitor_fill_cycles,
            } => {
                obj.num("cycles", cycles)
                    .num("instructions", instructions)
                    .num("icache_misses", icache_misses)
                    .num("dcache_misses", dcache_misses)
                    .num("monitor_fill_cycles", monitor_fill_cycles);
            }
        }
        obj.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_unique_and_stable() {
        let events = [
            TraceEvent::Fetch { pc: 0, hit: true },
            TraceEvent::IcacheFill {
                line_addr: 0,
                words: 8,
                fill_cycles: 34,
                decrypt_cycles: 0,
            },
            TraceEvent::Decrypt {
                line_addr: 0,
                encrypted_words: 8,
                cycles: 20,
            },
            TraceEvent::DataAccess {
                addr: 0,
                write: false,
                hit: true,
                writeback: false,
            },
            TraceEvent::Commit { pc: 0 },
            TraceEvent::WindowOpen { pc: 0 },
            TraceEvent::WindowClose { site: 0 },
            TraceEvent::GuardPass { site: 0 },
            TraceEvent::GuardFail { site: 0, pc: 0 },
            TraceEvent::SpacingTick { pc: 0, count: 1 },
            TraceEvent::SpacingExceeded { pc: 0, bound: 64 },
            TraceEvent::GuardInsert { site: 0 },
            TraceEvent::Watermark { bytes: 2 },
            TraceEvent::RunEnd {
                cycles: 1,
                instructions: 1,
                icache_misses: 0,
                dcache_misses: 0,
                monitor_fill_cycles: 0,
            },
        ];
        let mut kinds: Vec<&str> = events.iter().map(TraceEvent::kind).collect();
        let before = kinds.len();
        kinds.sort_unstable();
        kinds.dedup();
        assert_eq!(kinds.len(), before, "duplicate event kind");
    }

    #[test]
    fn jsonl_lines_parse_and_carry_kind() {
        let event = TraceEvent::GuardFail {
            site: 0x0040_0010,
            pc: 0x0040_0014,
        };
        let line = event.to_jsonl();
        let value = crate::json::parse(&line).expect("valid JSON");
        assert_eq!(value.get("ev").and_then(|v| v.as_str()), Some("guard_fail"));
        assert_eq!(
            value.get("site").and_then(|v| v.as_str()),
            Some("0x00400010")
        );
    }

    #[test]
    fn run_end_jsonl_has_numeric_counters() {
        let line = TraceEvent::RunEnd {
            cycles: 1234,
            instructions: 567,
            icache_misses: 8,
            dcache_misses: 9,
            monitor_fill_cycles: 20,
        }
        .to_jsonl();
        let value = crate::json::parse(&line).unwrap();
        assert_eq!(value.get("cycles").and_then(|v| v.as_u64()), Some(1234));
        assert_eq!(
            value.get("instructions").and_then(|v| v.as_u64()),
            Some(567)
        );
    }
}
