//! The event sink trait, the shared sink handle, and the standard
//! [`Recorder`] that aggregates events into a [`Metrics`] registry.

use std::cell::RefCell;
use std::collections::BTreeSet;
use std::fmt;
use std::rc::Rc;

use crate::event::TraceEvent;
use crate::metrics::Metrics;

/// Anything that consumes trace events.
///
/// Producers hold an `Option<SharedSink>`; with `None` the only cost on
/// the hot path is one branch, and nothing is allocated.
pub trait EventSink {
    /// Receives one event.
    fn event(&mut self, event: &TraceEvent);
}

/// A cloneable handle to one shared sink.
///
/// The simulator, the monitor and the toolchain all hold clones of the
/// same handle, so one run's events land in one place. The caller keeps
/// its own `Rc` to the concrete sink (see [`Recorder::shared`]) to read
/// results after the run.
#[derive(Clone)]
pub struct SharedSink(Rc<RefCell<dyn EventSink>>);

impl SharedSink {
    /// Wraps an already-shared sink.
    pub fn new(sink: Rc<RefCell<dyn EventSink>>) -> Self {
        SharedSink(sink)
    }

    /// Delivers one event to the sink.
    pub fn emit(&self, event: &TraceEvent) {
        self.0.borrow_mut().event(event);
    }
}

impl fmt::Debug for SharedSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SharedSink")
    }
}

/// The standard aggregating sink: counts every event into named metrics,
/// optionally keeps the raw JSONL lines, and remembers the first failure
/// event so detections can be attributed.
///
/// Counter names are part of the stable surface (tests and CI assert on
/// them): `icache_accesses`, `icache_misses`, `miss_fill_cycles`,
/// `decrypt_stall_cycles`, `decrypt_fills`, `decrypted_words`,
/// `decrypt_unit_cycles`, `dcache_accesses`, `dcache_misses`,
/// `dcache_writebacks`, `instructions_committed`, `guard_windows_opened`,
/// `guard_windows_closed`, `guard_checks_passed`, `guard_checks_failed`,
/// `guard_sites_passed`, `spacing_ticks`, `spacing_exceeded`,
/// `guard_sites_inserted`, `watermark_emissions`, `watermark_bytes`,
/// and the `sim_*` reconciliation set from [`TraceEvent::RunEnd`].
/// Histogram names: `icache_fill_cycles`, `decrypt_stall_cycles`.
#[derive(Debug, Default)]
pub struct Recorder {
    metrics: Metrics,
    sites_passed: BTreeSet<u32>,
    first_failure: Option<TraceEvent>,
    trace: Option<Vec<String>>,
}

impl Recorder {
    /// A recorder that aggregates metrics only.
    pub fn new() -> Self {
        Recorder::default()
    }

    /// A recorder that additionally keeps every event as a JSONL line.
    pub fn with_trace() -> Self {
        Recorder {
            trace: Some(Vec::new()),
            ..Recorder::default()
        }
    }

    /// Moves the recorder behind a shared handle.
    ///
    /// Returns the [`SharedSink`] to attach to producers plus the `Rc`
    /// through which the caller reads the recorder after the run.
    pub fn shared(self) -> (SharedSink, Rc<RefCell<Recorder>>) {
        let shared = Rc::new(RefCell::new(self));
        (SharedSink::new(shared.clone()), shared)
    }

    /// The aggregated metrics registry.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Number of *distinct* guard sites that passed at least once.
    pub fn distinct_sites_passed(&self) -> usize {
        self.sites_passed.len()
    }

    /// The first [`TraceEvent::GuardFail`] or
    /// [`TraceEvent::SpacingExceeded`] observed, if any — the event that
    /// proved a dynamic detection.
    pub fn first_failure(&self) -> Option<TraceEvent> {
        self.first_failure
    }

    /// Captured JSONL lines (empty unless built [`Recorder::with_trace`]).
    pub fn trace_lines(&self) -> &[String] {
        self.trace.as_deref().unwrap_or(&[])
    }
}

impl EventSink for Recorder {
    fn event(&mut self, event: &TraceEvent) {
        if let Some(lines) = &mut self.trace {
            lines.push(event.to_jsonl());
        }
        let m = &mut self.metrics;
        match *event {
            TraceEvent::Fetch { hit, .. } => {
                m.incr("icache_accesses");
                if !hit {
                    m.incr("icache_misses");
                }
            }
            TraceEvent::IcacheFill {
                fill_cycles,
                decrypt_cycles,
                ..
            } => {
                m.add("miss_fill_cycles", fill_cycles);
                m.add("decrypt_stall_cycles", decrypt_cycles);
                m.observe("icache_fill_cycles", fill_cycles);
                if decrypt_cycles > 0 {
                    m.observe("decrypt_stall_cycles", decrypt_cycles);
                }
            }
            TraceEvent::Decrypt {
                encrypted_words,
                cycles,
                ..
            } => {
                m.incr("decrypt_fills");
                m.add("decrypted_words", u64::from(encrypted_words));
                m.add("decrypt_unit_cycles", cycles);
            }
            TraceEvent::DataAccess { hit, writeback, .. } => {
                m.incr("dcache_accesses");
                if !hit {
                    m.incr("dcache_misses");
                }
                if writeback {
                    m.incr("dcache_writebacks");
                }
            }
            TraceEvent::Commit { .. } => {
                m.incr("instructions_committed");
            }
            TraceEvent::WindowOpen { .. } => {
                m.incr("guard_windows_opened");
            }
            TraceEvent::WindowClose { .. } => {
                m.incr("guard_windows_closed");
            }
            TraceEvent::GuardPass { site } => {
                m.incr("guard_checks_passed");
                self.sites_passed.insert(site);
                let distinct = self.sites_passed.len() as u64;
                self.metrics.set("guard_sites_passed", distinct);
            }
            TraceEvent::GuardFail { .. } => {
                m.incr("guard_checks_failed");
                self.first_failure.get_or_insert(*event);
            }
            TraceEvent::SpacingTick { .. } => {
                m.incr("spacing_ticks");
            }
            TraceEvent::SpacingExceeded { .. } => {
                m.incr("spacing_exceeded");
                self.first_failure.get_or_insert(*event);
            }
            TraceEvent::GuardInsert { .. } => {
                m.incr("guard_sites_inserted");
            }
            TraceEvent::Watermark { bytes } => {
                m.incr("watermark_emissions");
                m.add("watermark_bytes", u64::from(bytes));
            }
            TraceEvent::RunEnd {
                cycles,
                instructions,
                icache_misses,
                dcache_misses,
                monitor_fill_cycles,
            } => {
                m.set("sim_cycles", cycles);
                m.set("sim_instructions", instructions);
                m.set("sim_icache_misses", icache_misses);
                m.set("sim_dcache_misses", dcache_misses);
                m.set("sim_monitor_fill_cycles", monitor_fill_cycles);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(recorder: &mut Recorder, events: &[TraceEvent]) {
        for event in events {
            recorder.event(event);
        }
    }

    #[test]
    fn recorder_aggregates_fetch_and_fill() {
        let mut r = Recorder::new();
        drive(
            &mut r,
            &[
                TraceEvent::Fetch { pc: 0, hit: false },
                TraceEvent::IcacheFill {
                    line_addr: 0,
                    words: 8,
                    fill_cycles: 34,
                    decrypt_cycles: 16,
                },
                TraceEvent::Fetch { pc: 4, hit: true },
                TraceEvent::Commit { pc: 0 },
                TraceEvent::Commit { pc: 4 },
            ],
        );
        let m = r.metrics();
        assert_eq!(m.counter("icache_accesses"), 2);
        assert_eq!(m.counter("icache_misses"), 1);
        assert_eq!(m.counter("miss_fill_cycles"), 34);
        assert_eq!(m.counter("decrypt_stall_cycles"), 16);
        assert_eq!(m.counter("instructions_committed"), 2);
        assert_eq!(m.histogram("icache_fill_cycles").unwrap().count(), 1);
        assert_eq!(m.histogram("decrypt_stall_cycles").unwrap().sum(), 16);
    }

    #[test]
    fn guard_site_distinct_tracking() {
        let mut r = Recorder::new();
        drive(
            &mut r,
            &[
                TraceEvent::GuardPass { site: 0x100 },
                TraceEvent::GuardPass { site: 0x200 },
                TraceEvent::GuardPass { site: 0x100 },
            ],
        );
        assert_eq!(r.metrics().counter("guard_checks_passed"), 3);
        assert_eq!(r.metrics().counter("guard_sites_passed"), 2);
        assert_eq!(r.distinct_sites_passed(), 2);
        assert!(r.first_failure().is_none());
    }

    #[test]
    fn first_failure_sticks() {
        let mut r = Recorder::new();
        drive(
            &mut r,
            &[
                TraceEvent::GuardFail {
                    site: 0x10,
                    pc: 0x14,
                },
                TraceEvent::SpacingExceeded {
                    pc: 0x20,
                    bound: 64,
                },
            ],
        );
        assert!(matches!(
            r.first_failure(),
            Some(TraceEvent::GuardFail { site: 0x10, .. })
        ));
        assert_eq!(r.metrics().counter("guard_checks_failed"), 1);
        assert_eq!(r.metrics().counter("spacing_exceeded"), 1);
    }

    #[test]
    fn trace_capture_renders_jsonl() {
        let mut r = Recorder::with_trace();
        drive(&mut r, &[TraceEvent::Watermark { bytes: 3 }]);
        assert_eq!(r.trace_lines().len(), 1);
        assert!(r.trace_lines()[0].contains("\"ev\":\"watermark\""));
        assert_eq!(r.metrics().counter("watermark_bytes"), 3);
    }

    #[test]
    fn shared_handle_feeds_the_same_recorder() {
        let (sink, shared) = Recorder::new().shared();
        let clone = sink.clone();
        sink.emit(&TraceEvent::Commit { pc: 0 });
        clone.emit(&TraceEvent::Commit { pc: 4 });
        assert_eq!(
            shared.borrow().metrics().counter("instructions_committed"),
            2
        );
    }
}
