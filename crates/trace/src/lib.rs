//! Cycle-level observability for the flexprot workspace.
//!
//! The DATE-2004 protection model attributes runtime cost to three
//! mechanisms — guard checking, line-fill decryption and the I-cache miss
//! path — and this crate makes those mechanisms observable event by
//! event instead of only as end-of-run aggregates. Three pieces:
//!
//! * [`TraceEvent`] — the taxonomy of observation points reported by the
//!   simulator ([`Fetch`](TraceEvent::Fetch),
//!   [`IcacheFill`](TraceEvent::IcacheFill),
//!   [`DataAccess`](TraceEvent::DataAccess),
//!   [`Commit`](TraceEvent::Commit), [`RunEnd`](TraceEvent::RunEnd)),
//!   the secure monitor ([`WindowOpen`](TraceEvent::WindowOpen),
//!   [`WindowClose`](TraceEvent::WindowClose),
//!   [`GuardPass`](TraceEvent::GuardPass),
//!   [`GuardFail`](TraceEvent::GuardFail),
//!   [`SpacingTick`](TraceEvent::SpacingTick),
//!   [`SpacingExceeded`](TraceEvent::SpacingExceeded),
//!   [`Decrypt`](TraceEvent::Decrypt)) and the protection toolchain
//!   ([`GuardInsert`](TraceEvent::GuardInsert),
//!   [`Watermark`](TraceEvent::Watermark)).
//! * [`EventSink`] / [`SharedSink`] — the consumer trait and the
//!   cloneable handle producers hold. Producers store an
//!   `Option<SharedSink>`: with `None` (the default everywhere) the hot
//!   path pays one branch and allocates nothing, so timing results are
//!   bit-identical to an uninstrumented build.
//! * [`Metrics`] / [`Recorder`] — a registry of named counters and
//!   log2-bucketed latency [`Histogram`]s, plus the standard sink that
//!   aggregates every event into it (and optionally keeps raw JSONL
//!   lines for `fprun --trace`).
//!
//! Emission formats are plain JSON written and parsed by the in-crate
//! [`json`] module — the workspace builds offline, so no serde. The
//! metrics document is tagged [`METRICS_SCHEMA`] (`flexprot-metrics-v1`).

#![forbid(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

pub mod event;
pub mod json;
pub mod metrics;
pub mod sink;

pub use event::TraceEvent;
pub use metrics::{Histogram, Metrics, METRICS_SCHEMA};
pub use sink::{EventSink, Recorder, SharedSink};
