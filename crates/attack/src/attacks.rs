//! The attack families: randomized binary mutations.

use flexprot_isa::{Image, Inst, Reg, Rng64};

/// A family of tamper attacks on the shipped text segment.
///
/// All attacks are *static* patches — the realistic MATE scenario of
/// editing the binary on disk. The attacker sees the final image (possibly
/// ciphertext) but not keys or the monitor schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Attack {
    /// Flip one random bit of one random text word.
    BitFlip,
    /// Replace one random word with a random *valid* instruction
    /// (meaningful against plaintext; against ciphertext it decrypts to
    /// noise like any other patch).
    InstrSub,
    /// Overwrite a short run of words with NOPs (classic check removal).
    NopOut,
    /// Overwrite a run of words with an attacker payload that forces an
    /// early clean-looking exit (classic license-check bypass).
    CodeInject,
    /// Invert the polarity of one conditional branch (`beq`↔`bne`, …).
    /// Falls back to a bit flip when the chosen word is not a branch
    /// (e.g. under encryption the attacker cannot even find branches).
    BranchFlip,
    /// Copy one aligned 8-word chunk of text over another (splice/replay).
    Replay,
    /// Heuristic guard stripping: NOP every run of ≥ 4 consecutive
    /// instructions that write `$zero` (the visible signature of guard
    /// sequences in plaintext binaries).
    GuardStrip,
}

impl Attack {
    /// All attack families, in T3 row order.
    pub fn all() -> [Attack; 7] {
        [
            Attack::BitFlip,
            Attack::InstrSub,
            Attack::NopOut,
            Attack::CodeInject,
            Attack::BranchFlip,
            Attack::Replay,
            Attack::GuardStrip,
        ]
    }

    /// Short name for tables.
    pub fn name(self) -> &'static str {
        match self {
            Attack::BitFlip => "bit-flip",
            Attack::InstrSub => "instr-sub",
            Attack::NopOut => "nop-out",
            Attack::CodeInject => "code-inject",
            Attack::BranchFlip => "branch-flip",
            Attack::Replay => "replay",
            Attack::GuardStrip => "guard-strip",
        }
    }

    /// Applies one randomized instance of the attack to `image`.
    ///
    /// Returns `false` when the attack found no applicable site (e.g.
    /// guard stripping on an unguarded binary) and left the image
    /// untouched.
    pub fn apply(self, image: &mut Image, rng: &mut Rng64) -> bool {
        let len = image.text.len();
        if len == 0 {
            return false;
        }
        match self {
            Attack::BitFlip => {
                let index = rng.index(len);
                image.text[index] ^= 1 << rng.below(32);
                true
            }
            Attack::InstrSub => {
                let index = rng.index(len);
                image.text[index] = random_valid_inst(rng).encode();
                true
            }
            Attack::NopOut => {
                let run = rng.range_inclusive(1, 4.min(len as u64)) as usize;
                let index = rng.index(len - run + 1);
                for w in &mut image.text[index..index + run] {
                    *w = Inst::NOP.encode();
                }
                true
            }
            Attack::CodeInject => {
                // Payload: v0 = 17 (exit-with-code); a0 = 0; syscall —
                // makes the program "succeed" early with empty output.
                let payload = [
                    Inst::Addi {
                        rt: Reg::V0,
                        rs: Reg::ZERO,
                        imm: 17,
                    },
                    Inst::Addi {
                        rt: Reg::A0,
                        rs: Reg::ZERO,
                        imm: 0,
                    },
                    Inst::Syscall,
                ];
                if len < payload.len() {
                    return false;
                }
                let index = rng.index(len - payload.len() + 1);
                for (k, inst) in payload.iter().enumerate() {
                    image.text[index + k] = inst.encode();
                }
                true
            }
            Attack::BranchFlip => {
                let index = rng.index(len);
                let word = image.text[index];
                let flipped = match Inst::decode(word) {
                    Ok(Inst::Beq { rs, rt, off }) => Some(Inst::Bne { rs, rt, off }),
                    Ok(Inst::Bne { rs, rt, off }) => Some(Inst::Beq { rs, rt, off }),
                    Ok(Inst::Blez { rs, off }) => Some(Inst::Bgtz { rs, off }),
                    Ok(Inst::Bgtz { rs, off }) => Some(Inst::Blez { rs, off }),
                    Ok(Inst::Bltz { rs, off }) => Some(Inst::Bgez { rs, off }),
                    Ok(Inst::Bgez { rs, off }) => Some(Inst::Bltz { rs, off }),
                    _ => None,
                };
                match flipped {
                    Some(inst) => image.text[index] = inst.encode(),
                    None => image.text[index] ^= 1 << rng.below(32),
                }
                true
            }
            Attack::Replay => {
                const CHUNK: usize = 8;
                if len < 2 * CHUNK {
                    return false;
                }
                let chunks = len / CHUNK;
                let from = rng.index(chunks);
                let mut to = rng.index(chunks);
                while to == from {
                    to = rng.index(chunks);
                }
                let src: Vec<u32> = image.text[from * CHUNK..(from + 1) * CHUNK].to_vec();
                image.text[to * CHUNK..(to + 1) * CHUNK].copy_from_slice(&src);
                true
            }
            Attack::GuardStrip => {
                let mut stripped = false;
                let mut run_start = None;
                let mut i = 0;
                while i <= len {
                    let is_guardish = i < len && writes_zero(image.text[i]);
                    match (is_guardish, run_start) {
                        (true, None) => run_start = Some(i),
                        (false, Some(start)) => {
                            if i - start >= 4 {
                                for w in &mut image.text[start..i] {
                                    *w = Inst::NOP.encode();
                                }
                                stripped = true;
                            }
                            run_start = None;
                        }
                        _ => {}
                    }
                    i += 1;
                }
                stripped
            }
        }
    }
}

/// True when the word decodes to an R-type ALU instruction with `rd ==
/// $zero` — the attacker's heuristic signature of a guard symbol.
fn writes_zero(word: u32) -> bool {
    match Inst::decode(word) {
        Ok(inst) if inst != Inst::NOP => {
            inst.def() == Some(Reg::ZERO) && !inst.is_control_transfer()
        }
        _ => false,
    }
}

/// A random, valid, non-control instruction.
fn random_valid_inst(rng: &mut Rng64) -> Inst {
    let rd = Reg::from_bits(rng.below(32) as u32);
    let rs = Reg::from_bits(rng.below(32) as u32);
    let rt = Reg::from_bits(rng.below(32) as u32);
    let imm: i16 = rng.next_i16();
    match rng.below(6) {
        0 => Inst::Addu { rd, rs, rt },
        1 => Inst::Xor { rd, rs, rt },
        2 => Inst::Addi { rt, rs, imm },
        3 => Inst::Ori {
            rt,
            rs,
            imm: imm as u16,
        },
        4 => Inst::Sll {
            rd,
            rt,
            sh: rng.below(32) as u8,
        },
        _ => Inst::Sub { rd, rs, rt },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_image() -> Image {
        flexprot_asm::assemble_or_panic(
            r#"
main:   li   $t0, 10
loop:   addi $t0, $t0, -1
        bgtz $t0, loop
        li   $v0, 10
        syscall
"#,
        )
    }

    #[test]
    fn every_attack_mutates_or_reports_inapplicable() {
        for attack in Attack::all() {
            let mut rng = Rng64::new(42);
            let original = sample_image();
            let mut image = original.clone();
            let applied = attack.apply(&mut image, &mut rng);
            if applied && attack != Attack::GuardStrip {
                assert_ne!(image.text, original.text, "{} did nothing", attack.name());
            }
            if !applied {
                assert_eq!(image.text, original.text);
            }
        }
    }

    #[test]
    fn bitflip_changes_exactly_one_bit() {
        let mut rng = Rng64::new(1);
        let original = sample_image();
        let mut image = original.clone();
        assert!(Attack::BitFlip.apply(&mut image, &mut rng));
        let diff: u32 = original
            .text
            .iter()
            .zip(&image.text)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(diff, 1);
    }

    #[test]
    fn branch_flip_inverts_polarity() {
        let image = sample_image();
        let bgtz_index = image
            .text
            .iter()
            .position(|&w| matches!(Inst::decode(w), Ok(Inst::Bgtz { .. })))
            .expect("sample has a bgtz");
        // Try seeds until the branch word is picked; each hit must invert.
        let mut inverted = false;
        for seed in 0..200 {
            let mut rng = Rng64::new(seed);
            let mut mutated = image.clone();
            Attack::BranchFlip.apply(&mut mutated, &mut rng);
            if let Ok(Inst::Blez { .. }) = Inst::decode(mutated.text[bgtz_index]) {
                inverted = true;
                break;
            }
        }
        assert!(inverted, "branch flip never hit the branch in 200 seeds");
    }

    #[test]
    fn guard_strip_noop_on_unguarded_binary() {
        let mut rng = Rng64::new(3);
        let mut image = sample_image();
        assert!(!Attack::GuardStrip.apply(&mut image, &mut rng));
    }

    #[test]
    fn guard_strip_removes_guard_runs() {
        use flexprot_core::{insert_guards, GuardConfig};
        let out = insert_guards(&sample_image(), &GuardConfig::with_density(1.0), None).unwrap();
        let mut rng = Rng64::new(3);
        let mut image = out.image.clone();
        assert!(Attack::GuardStrip.apply(&mut image, &mut rng));
        // Every guard site must now be NOPs.
        for &site in out.sites.keys() {
            let idx = image.text_index_of(site).unwrap();
            for k in 0..4 {
                assert_eq!(image.text[idx + k], Inst::NOP.encode(), "site {site:#x}");
            }
        }
    }

    #[test]
    fn replay_copies_a_chunk() {
        let mut rng = Rng64::new(9);
        // Need >= 16 words.
        let mut src = "main:\n".to_owned();
        for i in 1..=20 {
            src.push_str(&format!("        addi $t0, $t0, {i}\n"));
        }
        src.push_str("        syscall\n");
        let mut image = flexprot_asm::assemble_or_panic(&src);
        let before = image.text.clone();
        assert!(Attack::Replay.apply(&mut image, &mut rng));
        assert_ne!(before, image.text);
        assert_eq!(before.len(), image.text.len());
    }

    #[test]
    fn random_valid_instructions_decode() {
        let mut rng = Rng64::new(5);
        for _ in 0..500 {
            let inst = random_valid_inst(&mut rng);
            assert_eq!(Inst::decode(inst.encode()), Ok(inst));
        }
    }
}
