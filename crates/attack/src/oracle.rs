//! The static tamper-surface oracle.
//!
//! Built once per protected image from the verifier's coverage analysis,
//! the oracle predicts — *without running anything* — whether the
//! protection stack will catch a given mutation.  A mutated word is
//! predicted caught when any of three static facts holds:
//!
//! 1. a sound guard window covers it: the rolling MAC over the window no
//!    longer matches its embedded signature;
//! 2. a cipher region covers it: the edit lands in ciphertext, so the
//!    decrypted plaintext garbles unpredictably;
//! 3. it is reachable plaintext and the new word does not decode: the
//!    core faults on an illegal instruction — deployed systems treat the
//!    fault as a tamper signal, the same convention the harness uses for
//!    [`crate::TrialOutcome::Faulted`].
//!
//! The harness scores these predictions against dynamic ground truth
//! (precision/recall over effective trials), which is how the whole
//! dataflow engine is validated against simulation.

//! Since v2 the oracle also *prices* each text word for the attacker:
//! [`StaticOracle::word_cost`] combines the per-word guard coverage with
//! the guard network's defeat closure — editing a covered word silently
//! means defeating every window over it plus, transitively, every guard
//! that checks those guards. [`StaticOracle::target_plan`] ranks the
//! reachable words cheapest-first, which is exactly the plan a
//! graph-aware attacker would follow (and what
//! [`crate::harness::evaluate_targeted`] executes).

use flexprot_isa::{Image, Inst};
use flexprot_secmon::SecMonConfig;
use flexprot_verify::{Coverage, GuardNet, LintPolicy, SurfaceMap};

/// Per-image static detection predictor and attack planner.
#[derive(Debug, Clone)]
pub struct StaticOracle {
    map: SurfaceMap,
    coverage: Coverage,
    net: GuardNet,
}

impl StaticOracle {
    /// Analyses `image` under `config` once; `predicts` and `word_cost`
    /// are then pure table lookups per trial.
    pub fn new(image: &Image, config: &SecMonConfig) -> StaticOracle {
        let v = flexprot_verify::analyze(image, config, &LintPolicy::default());
        StaticOracle {
            map: v.surface,
            coverage: v.coverage,
            net: v.guardnet,
        }
    }

    /// The underlying surface map.
    pub fn map(&self) -> &SurfaceMap {
        &self.map
    }

    /// The who-checks-whom guard network of the analysed image.
    pub fn net(&self) -> &GuardNet {
        &self.net
    }

    /// The number of guards an attacker must defeat to edit word `index`
    /// without the hash windows noticing: `0` for uncovered plaintext
    /// (the tamper surface), `u32::MAX` for ciphertext (no key, no
    /// forgery), otherwise the size of the covering windows' defeat
    /// closure under "checked by" in the guard network.
    pub fn word_cost(&self, index: usize) -> u32 {
        if self.map.encrypted[index] {
            return u32::MAX;
        }
        let covering = &self.coverage.covered_by[index];
        if covering.is_empty() {
            return 0;
        }
        let seeds: Vec<usize> = covering.iter().map(|&w| usize::from(w)).collect();
        self.net.defeat_closure(&seeds).len() as u32
    }

    /// Reachable text-word indices ranked cheapest-first by
    /// [`word_cost`](Self::word_cost), ties broken by address order —
    /// the order a graph-aware attacker should try edits in. Min-cut
    /// guards and uncovered words surface at the front; densely
    /// cross-checked regions sink to the back.
    pub fn target_plan(&self) -> Vec<usize> {
        let mut plan: Vec<usize> = (0..self.map.reachable.len())
            .filter(|&i| self.map.reachable[i])
            .collect();
        plan.sort_by_key(|&i| (self.word_cost(i), i));
        plan
    }

    /// Whether the stack is predicted to catch the difference between
    /// `original` and `mutated`.  Structural edits (length, base or entry
    /// changes) are always predicted caught; in-place attacks never make
    /// them.
    pub fn predicts(&self, original: &Image, mutated: &Image) -> bool {
        if original.text.len() != mutated.text.len()
            || original.text_base != mutated.text_base
            || original.entry != mutated.entry
        {
            return true;
        }
        for (i, (&before, &after)) in original.text.iter().zip(&mutated.text).enumerate() {
            if before == after {
                continue;
            }
            if self.map.covered[i] || self.map.encrypted[i] {
                return true;
            }
            if self.map.reachable[i] && Inst::decode(after).is_err() {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexprot_core::{protect, GuardConfig, ProtectionConfig};

    fn guarded_image() -> (Image, flexprot_core::Protected) {
        let image = flexprot_asm::assemble_or_panic(
            r#"
main:   li   $t0, 5
        li   $t1, 0
loop:   add  $t1, $t1, $t0
        addi $t0, $t0, -1
        bne  $t0, $zero, loop
        add  $a0, $t1, $zero
        li   $v0, 1
        syscall
        li   $v0, 10
        syscall
"#,
        );
        let config = ProtectionConfig::new().with_guards(GuardConfig {
            key: 0x0BAD_C0DE_CAFE_F00D,
            ..GuardConfig::with_density(1.0)
        });
        let protected = protect(&image, &config, None).expect("protect");
        (image, protected)
    }

    #[test]
    fn covered_word_edits_are_predicted_caught() {
        let (_, protected) = guarded_image();
        let oracle = StaticOracle::new(&protected.image, &protected.secmon);
        assert!(oracle.map().full_reachable_coverage(), "density 1.0");
        let mut mutated = protected.image.clone();
        mutated.text[0] ^= 1 << 3;
        assert!(oracle.predicts(&protected.image, &mutated));
    }

    #[test]
    fn identical_images_are_predicted_benign() {
        let (_, protected) = guarded_image();
        let oracle = StaticOracle::new(&protected.image, &protected.secmon);
        assert!(!oracle.predicts(&protected.image, &protected.image.clone()));
    }

    #[test]
    fn unprotected_gap_edit_is_predicted_missed_unless_undecodable() {
        let image =
            flexprot_asm::assemble_or_panic("main: li $t0, 1\n li $t0, 2\n li $v0, 10\n syscall\n");
        let oracle = StaticOracle::new(&image, &flexprot_secmon::SecMonConfig::transparent());
        // A decodable substitution in an unprotected image slips through.
        let mut substituted = image.clone();
        substituted.text[0] = image.text[1];
        assert!(!oracle.predicts(&image, &substituted));
        // An undecodable word on a reachable path is predicted to fault.
        let mut garbage = image.clone();
        garbage.text[0] = 0xFFFF_FFFF;
        assert!(Inst::decode(0xFFFF_FFFF).is_err());
        assert!(oracle.predicts(&image, &garbage));
    }

    #[test]
    fn word_costs_price_coverage_and_ciphertext() {
        use flexprot_core::EncryptConfig;
        let image =
            flexprot_asm::assemble_or_panic("main: li $t0, 1\n li $t0, 2\n li $v0, 10\n syscall\n");
        // Unprotected: every word costs nothing.
        let free = StaticOracle::new(&image, &flexprot_secmon::SecMonConfig::transparent());
        assert!((0..image.text.len()).all(|i| free.word_cost(i) == 0));

        // Fully guarded: every reachable word sits in at least one window,
        // so every cost is >= 1 (the emitter's windows are disjoint, so
        // the defeat closure is exactly the covering window).
        let config = ProtectionConfig::new().with_guards(GuardConfig::with_density(1.0));
        let p = protect(&image, &config, None).unwrap();
        let oracle = StaticOracle::new(&p.image, &p.secmon);
        let plan = oracle.target_plan();
        assert!(!plan.is_empty());
        assert!(plan.iter().all(|&i| oracle.word_cost(i) >= 1));
        // The plan is sorted by cost.
        for pair in plan.windows(2) {
            assert!(oracle.word_cost(pair[0]) <= oracle.word_cost(pair[1]));
        }

        // Encrypted: ciphertext words are priced unforgeable.
        let config = ProtectionConfig::new().with_encryption(EncryptConfig::whole_program(0xFACE));
        let p = protect(&image, &config, None).unwrap();
        let oracle = StaticOracle::new(&p.image, &p.secmon);
        assert!((0..p.image.text.len()).all(|i| oracle.word_cost(i) == u32::MAX));
    }

    #[test]
    fn sparse_guards_leave_zero_cost_words_at_the_front_of_the_plan() {
        let (_, protected) = guarded_image();
        let dense = StaticOracle::new(&protected.image, &protected.secmon);
        assert!(
            dense.target_plan().iter().all(|&i| dense.word_cost(i) > 0),
            "density 1.0 leaves no free word"
        );
        let image = flexprot_asm::assemble_or_panic(
            r#"
main:   li   $t0, 5
        li   $t1, 0
loop:   add  $t1, $t1, $t0
        addi $t0, $t0, -1
        bne  $t0, $zero, loop
        add  $a0, $t1, $zero
        li   $v0, 1
        syscall
        li   $v0, 10
        syscall
"#,
        );
        let config = ProtectionConfig::new().with_guards(GuardConfig {
            key: 0x0BAD_C0DE_CAFE_F00D,
            ..GuardConfig::with_density(0.25)
        });
        let sparse_p = protect(&image, &config, None).expect("protect");
        let sparse = StaticOracle::new(&sparse_p.image, &sparse_p.secmon);
        let plan = sparse.target_plan();
        assert!(
            sparse.word_cost(plan[0]) == 0,
            "a quarter-density image must expose free words first"
        );
    }
}
