//! The static tamper-surface oracle.
//!
//! Built once per protected image from the verifier's coverage analysis,
//! the oracle predicts — *without running anything* — whether the
//! protection stack will catch a given mutation.  A mutated word is
//! predicted caught when any of three static facts holds:
//!
//! 1. a sound guard window covers it: the rolling MAC over the window no
//!    longer matches its embedded signature;
//! 2. a cipher region covers it: the edit lands in ciphertext, so the
//!    decrypted plaintext garbles unpredictably;
//! 3. it is reachable plaintext and the new word does not decode: the
//!    core faults on an illegal instruction — deployed systems treat the
//!    fault as a tamper signal, the same convention the harness uses for
//!    [`crate::TrialOutcome::Faulted`].
//!
//! The harness scores these predictions against dynamic ground truth
//! (precision/recall over effective trials), which is how the whole
//! dataflow engine is validated against simulation.

use flexprot_isa::{Image, Inst};
use flexprot_secmon::SecMonConfig;
use flexprot_verify::SurfaceMap;

/// Per-image static detection predictor.
#[derive(Debug, Clone)]
pub struct StaticOracle {
    map: SurfaceMap,
}

impl StaticOracle {
    /// Analyses `image` under `config` once; `predicts` is then pure
    /// table lookup per trial.
    pub fn new(image: &Image, config: &SecMonConfig) -> StaticOracle {
        StaticOracle {
            map: flexprot_verify::surface(image, config),
        }
    }

    /// The underlying surface map.
    pub fn map(&self) -> &SurfaceMap {
        &self.map
    }

    /// Whether the stack is predicted to catch the difference between
    /// `original` and `mutated`.  Structural edits (length, base or entry
    /// changes) are always predicted caught; in-place attacks never make
    /// them.
    pub fn predicts(&self, original: &Image, mutated: &Image) -> bool {
        if original.text.len() != mutated.text.len()
            || original.text_base != mutated.text_base
            || original.entry != mutated.entry
        {
            return true;
        }
        for (i, (&before, &after)) in original.text.iter().zip(&mutated.text).enumerate() {
            if before == after {
                continue;
            }
            if self.map.covered[i] || self.map.encrypted[i] {
                return true;
            }
            if self.map.reachable[i] && Inst::decode(after).is_err() {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexprot_core::{protect, GuardConfig, ProtectionConfig};

    fn guarded_image() -> (Image, flexprot_core::Protected) {
        let image = flexprot_asm::assemble_or_panic(
            r#"
main:   li   $t0, 5
        li   $t1, 0
loop:   add  $t1, $t1, $t0
        addi $t0, $t0, -1
        bne  $t0, $zero, loop
        add  $a0, $t1, $zero
        li   $v0, 1
        syscall
        li   $v0, 10
        syscall
"#,
        );
        let config = ProtectionConfig::new().with_guards(GuardConfig {
            key: 0x0BAD_C0DE_CAFE_F00D,
            ..GuardConfig::with_density(1.0)
        });
        let protected = protect(&image, &config, None).expect("protect");
        (image, protected)
    }

    #[test]
    fn covered_word_edits_are_predicted_caught() {
        let (_, protected) = guarded_image();
        let oracle = StaticOracle::new(&protected.image, &protected.secmon);
        assert!(oracle.map().full_reachable_coverage(), "density 1.0");
        let mut mutated = protected.image.clone();
        mutated.text[0] ^= 1 << 3;
        assert!(oracle.predicts(&protected.image, &mutated));
    }

    #[test]
    fn identical_images_are_predicted_benign() {
        let (_, protected) = guarded_image();
        let oracle = StaticOracle::new(&protected.image, &protected.secmon);
        assert!(!oracle.predicts(&protected.image, &protected.image.clone()));
    }

    #[test]
    fn unprotected_gap_edit_is_predicted_missed_unless_undecodable() {
        let image =
            flexprot_asm::assemble_or_panic("main: li $t0, 1\n li $t0, 2\n li $v0, 10\n syscall\n");
        let oracle = StaticOracle::new(&image, &flexprot_secmon::SecMonConfig::transparent());
        // A decodable substitution in an unprotected image slips through.
        let mut substituted = image.clone();
        substituted.text[0] = image.text[1];
        assert!(!oracle.predicts(&image, &substituted));
        // An undecodable word on a reachable path is predicted to fault.
        let mut garbage = image.clone();
        garbage.text[0] = 0xFFFF_FFFF;
        assert!(Inst::decode(0xFFFF_FFFF).is_err());
        assert!(oracle.predicts(&image, &garbage));
    }
}
