//! Static analysis from the attacker's chair: the metrics a reverse
//! engineer's first-pass tooling would compute on a shipped binary.
//!
//! These quantify *stealth* (how visibly protected a binary is) and
//! *diversity* (how different two protections of the same program look),
//! feeding experiments T5 and T6.

use std::collections::BTreeSet;

use flexprot_isa::{Image, Inst, Reg};

/// Number of runs of ≥ `min_run` consecutive decodable instructions that
/// write `$zero` — the attacker's guard-site scanner. On a stealthy binary
/// this should count ≈ 0 even when guards are present.
pub fn guard_like_runs(image: &Image, min_run: usize) -> usize {
    let mut runs = 0;
    let mut current = 0usize;
    for &word in &image.text {
        let guardish = match Inst::decode(word) {
            Ok(inst) if inst != Inst::NOP => {
                inst.def() == Some(Reg::ZERO) && !inst.is_control_transfer()
            }
            _ => false,
        };
        if guardish {
            current += 1;
        } else {
            if current >= min_run {
                runs += 1;
            }
            current = 0;
        }
    }
    if current >= min_run {
        runs += 1;
    }
    runs
}

/// Shannon entropy of the text segment in bits per byte. Plaintext RISC
/// code sits well below 8 (field structure, common opcodes); a keystream
/// ciphertext approaches 8.
pub fn text_entropy_bits(image: &Image) -> f64 {
    let mut counts = [0u64; 256];
    let mut total = 0u64;
    for &word in &image.text {
        for byte in word.to_le_bytes() {
            counts[byte as usize] += 1;
            total += 1;
        }
    }
    if total == 0 {
        return 0.0;
    }
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / total as f64;
            -p * p.log2()
        })
        .sum()
}

/// Fraction of text words that fail to decode — a quick "is this even
/// code?" signal.
pub fn undecodable_fraction(image: &Image) -> f64 {
    if image.text.is_empty() {
        return 0.0;
    }
    let bad = image
        .text
        .iter()
        .filter(|&&w| Inst::decode(w).is_err())
        .count();
    bad as f64 / image.text.len() as f64
}

/// Fraction of differing words between two images (by position, up to the
/// shorter length, plus any length difference counted as differing).
pub fn word_diversity(a: &Image, b: &Image) -> f64 {
    let common = a.text.len().min(b.text.len());
    let longer = a.text.len().max(b.text.len());
    if longer == 0 {
        return 0.0;
    }
    let differing = a.text.iter().zip(&b.text).filter(|(x, y)| x != y).count() + (longer - common);
    differing as f64 / longer as f64
}

/// Set of distinct instruction words — how much byte-pattern reuse a
/// pattern-matching attacker could lean on.
pub fn distinct_words(image: &Image) -> usize {
    image.text.iter().copied().collect::<BTreeSet<u32>>().len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexprot_core::{protect, EncryptConfig, GuardConfig, ProtectionConfig};

    fn sample() -> Image {
        flexprot_workloads::by_name("rle").expect("kernel").image()
    }

    #[test]
    fn unprotected_code_has_no_guard_runs() {
        assert_eq!(guard_like_runs(&sample(), 4), 0);
    }

    #[test]
    fn guarded_plaintext_is_visibly_guarded() {
        let image = sample();
        let config = ProtectionConfig::new().with_guards(GuardConfig::with_density(1.0));
        let protected = protect(&image, &config, None).unwrap();
        let runs = guard_like_runs(&protected.image, 4);
        assert!(
            runs >= protected.report.guards_inserted / 2,
            "expected visible runs, found {runs} of {}",
            protected.report.guards_inserted
        );
    }

    #[test]
    fn encryption_hides_the_guards() {
        let image = sample();
        let config = ProtectionConfig::new()
            .with_guards(GuardConfig::with_density(1.0))
            .with_encryption(EncryptConfig::whole_program(0xCAFE));
        let protected = protect(&image, &config, None).unwrap();
        assert!(guard_like_runs(&protected.image, 4) <= 1);
    }

    #[test]
    fn ciphertext_entropy_exceeds_plaintext() {
        let image = sample();
        let plain_entropy = text_entropy_bits(&image);
        let config = ProtectionConfig::new().with_encryption(EncryptConfig::whole_program(0xCAFE));
        let protected = protect(&image, &config, None).unwrap();
        let cipher_entropy = text_entropy_bits(&protected.image);
        assert!(
            cipher_entropy > plain_entropy + 0.5,
            "plain {plain_entropy:.2} vs cipher {cipher_entropy:.2}"
        );
        assert!(cipher_entropy > 6.0);
    }

    #[test]
    fn undecodable_fraction_separates_cipher_from_plain() {
        let image = sample();
        assert_eq!(undecodable_fraction(&image), 0.0);
        let config = ProtectionConfig::new().with_encryption(EncryptConfig::whole_program(0xCAFE));
        let protected = protect(&image, &config, None).unwrap();
        assert!(undecodable_fraction(&protected.image) > 0.2);
    }

    #[test]
    fn reseeding_diversifies_guarded_binaries() {
        let image = sample();
        let protect_with = |seed: u64| {
            let config = ProtectionConfig::new().with_guards(GuardConfig {
                seed,
                key: seed.rotate_left(7),
                ..GuardConfig::with_density(0.5)
            });
            protect(&image, &config, None).unwrap().image
        };
        let a = protect_with(1);
        let b = protect_with(2);
        assert!(word_diversity(&a, &b) > 0.1);
        assert_eq!(word_diversity(&a, &a), 0.0);
    }

    #[test]
    fn rekeying_diversifies_ciphertext_completely() {
        let image = sample();
        let enc = |key: u64| {
            let config = ProtectionConfig::new().with_encryption(EncryptConfig::whole_program(key));
            protect(&image, &config, None).unwrap().image
        };
        assert!(word_diversity(&enc(1), &enc(2)) > 0.95);
    }

    #[test]
    fn distinct_words_counts() {
        let image = Image::from_text(vec![1, 1, 2, 3, 3, 3]);
        assert_eq!(distinct_words(&image), 3);
    }
}
