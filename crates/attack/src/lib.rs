//! Tamper-attack models and the detection-coverage harness.
//!
//! The attacker in the MATE threat model holds the shipped binary — after
//! protection, so possibly ciphertext — but not the keys or the monitor
//! schedule. Each [`Attack`] is a family of binary mutations; the
//! [`harness`] applies many randomized trials and classifies how each run
//! ends:
//!
//! * **detected** — the secure monitor raised a tamper event;
//! * **faulted** — the mutation crashed execution (illegal instruction,
//!   wild pc, …), which deployed systems also treat as a tamper signal;
//! * **wrong output** — the program ran to completion with corrupted
//!   semantics and nothing noticed: the attacker wins;
//! * **benign** — output unchanged (the mutation hit dead code or was
//!   semantically neutral);
//! * **timeout** — the fuel limit expired (e.g. a mutated loop bound).
//!
//! Experiment T3 builds its coverage matrix from these summaries.

pub mod analysis;
pub mod attacks;
pub mod crosscheck;
pub mod harness;
pub mod oracle;

pub use attacks::Attack;
pub use crosscheck::{classify, cross_check, Agreement, CrossCheckSummary};
pub use harness::{
    evaluate, evaluate_random_nop, evaluate_targeted, run_trial, run_trial_attributed,
    static_detects, AttackSummary, DetectionCause, TrialOutcome,
};
pub use oracle::StaticOracle;
