//! Validator-vs-oracle cross-check.
//!
//! The translation validator ([`flexprot_verify::equiv`]) and the static
//! tamper oracle ([`crate::StaticOracle`]) answer *different* questions
//! about the same mutated binary: the validator asks "does this image
//! still compute the baseline program?", the oracle asks "will the
//! protection hardware notice the edit?". On a sound protection stack the
//! two must mesh: every word the validator proves **inequivalent** must
//! either be an oracle-predicted detection or land on the *known* tamper
//! surface (uncovered, unencrypted plaintext — the gap the surface map
//! already reports). An inequivalent edit the oracle misses *off* the
//! surface would mean one of the two analyses is wrong, which is exactly
//! the N-version disagreement this module exists to surface.
//!
//! The opposite direction is expected to diverge and is only tallied: a
//! guard word rewritten into a *different* guard-form word is
//! semantically transparent (the validator proves equivalence) yet the
//! window MAC no longer matches (the oracle predicts detection) — the
//! hardware kills a program that would have computed the right answer.
//! Experiment T12 scores both directions across the protection matrix.

use flexprot_core::Protected;
use flexprot_isa::{Image, Rng64};
use flexprot_verify::equiv::{self, EquivVerdict};
use flexprot_verify::RefusalReason;

use crate::oracle::StaticOracle;

/// How one mutated image was classified by both analyses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Agreement {
    /// Validator inequivalent, oracle predicts detection: the stack
    /// catches a semantically damaging edit.
    CaughtDamage,
    /// Validator inequivalent, oracle misses, but every mutated word lies
    /// on the reported tamper surface: a *known* gap, already priced by
    /// the surface map.
    KnownGap,
    /// Validator inequivalent, oracle misses, and the edit is off the
    /// tamper surface: an unexplained disagreement — one analysis is
    /// wrong. Must be zero on a sound stack.
    Unexplained,
    /// Validator proves equivalence (or soundly refuses) while the oracle
    /// predicts detection: the hardware rejects a semantically harmless
    /// edit (e.g. resigning a guard word). A false positive of the
    /// *hardware*, not of either analysis.
    HarmlessCaught,
    /// Neither analysis flags the mutation (identical images, or an edit
    /// that is both semantically neutral and invisible to the monitor).
    Benign,
}

/// Tally of [`Agreement`] classes over a mutation campaign.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CrossCheckSummary {
    /// Mutated images scored.
    pub trials: u32,
    /// Validator verdict was `Inequivalent`.
    pub inequivalent: u32,
    /// Validator verdict was `Refused`.
    pub refused: u32,
    /// Refusals carrying [`RefusalReason::StoreWritesMemory`]: the store
    /// provably writes data memory the baseline never touches.
    pub refused_store_writes: u32,
    /// Refusals carrying [`RefusalReason::StoreMayAliasText`]: the store
    /// may rewrite the text segment, so self-modification cannot be
    /// excluded.
    pub refused_may_alias: u32,
    /// Refusals carrying [`RefusalReason::BranchUndecided`].
    pub refused_branch: u32,
    /// Oracle predicted detection.
    pub predicted: u32,
    /// [`Agreement::CaughtDamage`] count.
    pub caught_damage: u32,
    /// [`Agreement::KnownGap`] count.
    pub known_gaps: u32,
    /// [`Agreement::Unexplained`] count — must be zero.
    pub unexplained: u32,
    /// [`Agreement::HarmlessCaught`] count.
    pub harmless_caught: u32,
    /// [`Agreement::Benign`] count.
    pub benign: u32,
}

impl CrossCheckSummary {
    /// Folds another summary into this one (for merging matrix cells).
    pub fn merge(&mut self, other: &CrossCheckSummary) {
        self.trials += other.trials;
        self.inequivalent += other.inequivalent;
        self.refused += other.refused;
        self.refused_store_writes += other.refused_store_writes;
        self.refused_may_alias += other.refused_may_alias;
        self.refused_branch += other.refused_branch;
        self.predicted += other.predicted;
        self.caught_damage += other.caught_damage;
        self.known_gaps += other.known_gaps;
        self.unexplained += other.unexplained;
        self.harmless_caught += other.harmless_caught;
        self.benign += other.benign;
    }
}

/// Scores one mutated image against both analyses.
///
/// `base` is the unprotected baseline, `protected` the shipped build the
/// attacker started from, `mutated` the attacker's edit of
/// `protected.image`. The oracle must have been built from
/// `protected.image` + `protected.secmon`.
pub fn classify(
    base: &Image,
    protected: &Protected,
    oracle: &StaticOracle,
    mutated: &Image,
) -> Agreement {
    let predicted = oracle.predicts(&protected.image, mutated);
    let report = equiv::validate(base, mutated, &protected.secmon);
    match report.verdict {
        EquivVerdict::Inequivalent { .. } => {
            if predicted {
                Agreement::CaughtDamage
            } else if mutation_on_surface(protected, oracle, mutated) {
                Agreement::KnownGap
            } else {
                Agreement::Unexplained
            }
        }
        EquivVerdict::Proven | EquivVerdict::Refused { .. } => {
            if predicted {
                Agreement::HarmlessCaught
            } else {
                Agreement::Benign
            }
        }
    }
}

/// Whether every changed word of `mutated` lies on the reported tamper
/// surface (or outside reachable text): uncovered, unencrypted words the
/// surface map already flags as the attacker's free real estate. A
/// structural edit (length/base/entry change) is never a known gap.
fn mutation_on_surface(protected: &Protected, oracle: &StaticOracle, mutated: &Image) -> bool {
    if protected.image.text.len() != mutated.text.len()
        || protected.image.text_base != mutated.text_base
        || protected.image.entry != mutated.entry
    {
        return false;
    }
    let map = oracle.map();
    protected
        .image
        .text
        .iter()
        .zip(&mutated.text)
        .enumerate()
        .filter(|(_, (&before, &after))| before != after)
        .all(|(i, _)| !map.covered[i] && !map.encrypted[i])
}

/// Runs a single-word random mutation campaign: each trial flips a
/// random bit pattern into one random text word of the protected image,
/// classifies the result via [`classify`], and tallies the agreement
/// classes. Deterministic for a given seed.
pub fn cross_check(
    base: &Image,
    protected: &Protected,
    trials: u32,
    rng: &mut Rng64,
) -> CrossCheckSummary {
    let oracle = StaticOracle::new(&protected.image, &protected.secmon);
    let mut summary = CrossCheckSummary::default();
    for _ in 0..trials {
        let mut mutated = protected.image.clone();
        let index = rng.index(mutated.text.len());
        // Bias half the trials toward single-bit flips (the classic
        // hardware-attack model), half toward whole-word substitution.
        if rng.next_u64() & 1 == 0 {
            mutated.text[index] ^= 1 << rng.below(32);
        } else {
            mutated.text[index] = rng.next_u32();
        }
        summary.trials += 1;
        let report = equiv::validate(base, &mutated, &protected.secmon);
        match report.verdict {
            EquivVerdict::Inequivalent { .. } => summary.inequivalent += 1,
            EquivVerdict::Refused { reason } => {
                summary.refused += 1;
                match reason {
                    RefusalReason::StoreWritesMemory => summary.refused_store_writes += 1,
                    RefusalReason::StoreMayAliasText => summary.refused_may_alias += 1,
                    RefusalReason::BranchUndecided => summary.refused_branch += 1,
                }
            }
            EquivVerdict::Proven => {}
        }
        if oracle.predicts(&protected.image, &mutated) {
            summary.predicted += 1;
        }
        match classify(base, protected, &oracle, &mutated) {
            Agreement::CaughtDamage => summary.caught_damage += 1,
            Agreement::KnownGap => summary.known_gaps += 1,
            Agreement::Unexplained => summary.unexplained += 1,
            Agreement::HarmlessCaught => summary.harmless_caught += 1,
            Agreement::Benign => summary.benign += 1,
        }
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexprot_core::{protect, EncryptConfig, GuardConfig, ProtectionConfig};

    fn baseline() -> Image {
        flexprot_asm::assemble_or_panic(
            r#"
main:   li   $t0, 5
        li   $t1, 0
loop:   add  $t1, $t1, $t0
        addi $t0, $t0, -1
        bne  $t0, $zero, loop
        add  $a0, $t1, $zero
        li   $v0, 1
        syscall
        li   $v0, 10
        syscall
"#,
        )
    }

    #[test]
    fn fully_protected_campaign_has_no_unexplained_disagreements() {
        let base = baseline();
        let config = ProtectionConfig::new()
            .with_guards(GuardConfig {
                key: 0x0BAD_C0DE_CAFE_F00D,
                ..GuardConfig::with_density(1.0)
            })
            .with_encryption(EncryptConfig::whole_program(0x5EED));
        let protected = protect(&base, &config, None).unwrap();
        let mut rng = Rng64::new(7);
        let summary = cross_check(&base, &protected, 64, &mut rng);
        assert_eq!(summary.trials, 64);
        assert_eq!(summary.unexplained, 0, "{summary:?}");
        // Every refusal carries exactly one typed reason.
        assert_eq!(
            summary.refused,
            summary.refused_store_writes + summary.refused_may_alias + summary.refused_branch,
            "{summary:?}"
        );
        // Full coverage leaves the attacker no known gap either.
        assert_eq!(summary.known_gaps, 0, "{summary:?}");
        assert!(summary.inequivalent > 0, "{summary:?}");
    }

    #[test]
    fn unprotected_campaign_files_damage_as_known_gaps() {
        let base = baseline();
        let protected = protect(&base, &ProtectionConfig::new(), None).unwrap();
        let mut rng = Rng64::new(11);
        let summary = cross_check(&base, &protected, 64, &mut rng);
        assert_eq!(summary.unexplained, 0, "{summary:?}");
        // With no protection at all, semantically damaging decodable
        // edits are exactly the surface map's known gaps (undecodable
        // edits still fault, which the oracle predicts).
        assert!(summary.known_gaps > 0, "{summary:?}");
    }

    #[test]
    fn resigned_guard_word_is_harmless_but_caught() {
        use flexprot_secmon::encode_guard_inst;
        let base = baseline();
        let config = ProtectionConfig::new().with_guards(GuardConfig {
            key: 0x0BAD_C0DE_CAFE_F00D,
            ..GuardConfig::with_density(1.0)
        });
        let protected = protect(&base, &config, None).unwrap();
        let oracle = StaticOracle::new(&protected.image, &protected.secmon);
        let (&site, _) = protected.secmon.sites.iter().next().unwrap();
        let idx = protected.image.text_index_of(site).unwrap();
        let mut mutated = protected.image.clone();
        // A forged guard word with the wrong symbols: still guard-form
        // (semantically inert, the validator proves equivalence) but the
        // window MAC breaks (the oracle predicts detection).
        let forged = encode_guard_inst(0x15, 3).encode();
        assert_ne!(mutated.text[idx], forged);
        mutated.text[idx] = forged;
        assert_eq!(
            classify(&base, &protected, &oracle, &mutated),
            Agreement::HarmlessCaught
        );
    }
}
