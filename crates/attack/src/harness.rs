//! The detection-coverage evaluation harness.

use std::collections::BTreeMap;

use flexprot_core::Protected;
use flexprot_isa::{Image, Rng64};
use flexprot_secmon::{SecMon, SecMonConfig};
use flexprot_sim::{Fault, Machine, Outcome, RunResult, SimConfig};
use flexprot_trace::{Metrics, Recorder, TraceEvent};

use crate::attacks::Attack;

/// Classification of one attacked run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrialOutcome {
    /// The monitor raised a tamper event after this many committed
    /// instructions (the detection latency).
    Detected { latency_instrs: u64 },
    /// Execution faulted (illegal instruction, wild pc, …).
    Faulted,
    /// The program completed but its output or exit code changed: a
    /// successful, unnoticed tamper.
    WrongOutput,
    /// Output unchanged — the mutation was semantically inert.
    Benign,
    /// The fuel limit expired.
    Timeout,
    /// The attack found no applicable site in this binary.
    Inapplicable,
}

/// What *proved* a detection: the trace event or fault kind that stopped
/// the attacked run.
///
/// Guard-machinery causes come from the monitor's own event stream (the
/// [`TraceEvent::GuardFail`] / [`TraceEvent::SpacingExceeded`] event
/// recorded during the trial); fault causes come from the CPU. On an
/// encrypted binary an [`DetectionCause::DecryptGarble`] means the
/// attacker's plaintext patch decrypted to an undecodable word — on a
/// plaintext binary it means the patch itself was undecodable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DetectionCause {
    /// A guard signature check failed (mismatch, malformed guard word or
    /// interrupted sequence) — proven by a guard-fail event.
    GuardFail,
    /// The spacing counter exceeded its bound — guard stripping.
    SpacingBound,
    /// An illegal-instruction fault: the fetched word decoded to garbage.
    DecryptGarble,
    /// Control flow left the text segment.
    WildControlFlow,
    /// Any other hard fault (unaligned access, break, bad syscall).
    OtherFault,
}

impl DetectionCause {
    /// Stable lowercase name (used as a metrics/report key).
    pub fn name(&self) -> &'static str {
        match self {
            DetectionCause::GuardFail => "guard_fail",
            DetectionCause::SpacingBound => "spacing_bound",
            DetectionCause::DecryptGarble => "decrypt_garble",
            DetectionCause::WildControlFlow => "wild_control_flow",
            DetectionCause::OtherFault => "other_fault",
        }
    }
}

/// Aggregated results of many randomized trials of one attack family.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AttackSummary {
    /// Trials whose mutation actually applied.
    pub applied: u32,
    /// Monitor detections.
    pub detected: u32,
    /// Execution faults.
    pub faulted: u32,
    /// Unnoticed semantic corruption — attacker success.
    pub wrong_output: u32,
    /// Semantically inert mutations.
    pub benign: u32,
    /// Fuel exhaustion.
    pub timeout: u32,
    /// Trials the static verifier flagged before any execution — the
    /// zero-latency detection baseline.
    pub static_detected: u32,
    /// Sum of detection latencies (instructions), for averaging.
    pub latency_sum: u64,
    /// Individual detection latencies (instructions), for percentiles.
    pub latencies: Vec<u64>,
    /// How each caught trial (detected or faulted) was proven, keyed by
    /// [`DetectionCause`].
    pub causes: BTreeMap<DetectionCause, u32>,
    /// Effective trials the tamper-surface oracle predicted caught and the
    /// stack caught (detected or faulted).
    pub oracle_true_pos: u32,
    /// Effective trials predicted caught that escaped (wrong output or
    /// timeout).
    pub oracle_false_pos: u32,
    /// Effective trials predicted missed that the stack caught anyway.
    pub oracle_false_neg: u32,
    /// Effective trials predicted missed that escaped.
    pub oracle_true_neg: u32,
}

impl AttackSummary {
    /// Fraction of *effective* tampers (those that were not benign) that
    /// the system caught, counting monitor detections and hard faults.
    ///
    /// Returns 1.0 when no tamper had any effect (nothing to catch).
    pub fn detection_rate(&self) -> f64 {
        let effective = self.detected + self.faulted + self.wrong_output + self.timeout;
        if effective == 0 {
            1.0
        } else {
            f64::from(self.detected + self.faulted) / f64::from(effective)
        }
    }

    /// Fraction of applied trials `fplint` flags without running a single
    /// instruction. Compare with [`AttackSummary::detection_rate`]: the
    /// static pass has zero latency but only sees what the contract signs.
    pub fn static_detection_rate(&self) -> f64 {
        if self.applied == 0 {
            0.0
        } else {
            f64::from(self.static_detected) / f64::from(self.applied)
        }
    }

    /// Fraction of applied trials where the attacker won outright.
    pub fn attacker_success_rate(&self) -> f64 {
        if self.applied == 0 {
            0.0
        } else {
            f64::from(self.wrong_output) / f64::from(self.applied)
        }
    }

    /// Precision of the static oracle over effective trials:
    /// `tp / (tp + fp)`. Returns 1.0 when the oracle predicted nothing
    /// caught (no positives to be wrong about).
    pub fn oracle_precision(&self) -> f64 {
        let positives = self.oracle_true_pos + self.oracle_false_pos;
        if positives == 0 {
            1.0
        } else {
            f64::from(self.oracle_true_pos) / f64::from(positives)
        }
    }

    /// Recall of the static oracle over effective trials:
    /// `tp / (tp + fn)`. Returns 1.0 when the stack caught nothing (no
    /// ground-truth positives to recover).
    pub fn oracle_recall(&self) -> f64 {
        let caught = self.oracle_true_pos + self.oracle_false_neg;
        if caught == 0 {
            1.0
        } else {
            f64::from(self.oracle_true_pos) / f64::from(caught)
        }
    }

    /// Effective trials the oracle was scored on.
    pub fn oracle_trials(&self) -> u32 {
        self.oracle_true_pos + self.oracle_false_pos + self.oracle_false_neg + self.oracle_true_neg
    }

    /// Mean detection latency in instructions; `None` without detections.
    pub fn mean_latency(&self) -> Option<f64> {
        (self.detected > 0).then(|| self.latency_sum as f64 / f64::from(self.detected))
    }

    /// The `q`-quantile (0.0–1.0, nearest-rank) of detection latencies;
    /// `None` without detections.
    pub fn latency_quantile(&self, q: f64) -> Option<u64> {
        if self.latencies.is_empty() {
            return None;
        }
        let mut sorted = self.latencies.clone();
        sorted.sort_unstable();
        let rank = ((sorted.len() as f64) * q).ceil() as usize;
        Some(sorted[rank.clamp(1, sorted.len()) - 1])
    }

    /// Merges another summary into this one (for cross-workload
    /// aggregation).
    pub fn merge(&mut self, other: &AttackSummary) {
        self.applied += other.applied;
        self.detected += other.detected;
        self.faulted += other.faulted;
        self.wrong_output += other.wrong_output;
        self.benign += other.benign;
        self.timeout += other.timeout;
        self.static_detected += other.static_detected;
        self.latency_sum += other.latency_sum;
        self.latencies.extend_from_slice(&other.latencies);
        for (cause, count) in &other.causes {
            *self.causes.entry(*cause).or_insert(0) += count;
        }
        self.oracle_true_pos += other.oracle_true_pos;
        self.oracle_false_pos += other.oracle_false_pos;
        self.oracle_false_neg += other.oracle_false_neg;
        self.oracle_true_neg += other.oracle_true_neg;
    }

    /// Number of caught trials proven by `cause`.
    pub fn cause_count(&self, cause: DetectionCause) -> u32 {
        self.causes.get(&cause).copied().unwrap_or(0)
    }

    /// Exports the outcome tallies into a metrics registry under stable
    /// `attack_*` counter names, plus every detection latency as an
    /// `attack_detection_latency` histogram observation. Additive, so
    /// repeated exports from per-cell summaries aggregate cleanly.
    pub fn export_metrics(&self, metrics: &mut Metrics) {
        metrics.add("attack_trials_applied", u64::from(self.applied));
        metrics.add("attack_detected", u64::from(self.detected));
        metrics.add("attack_faulted", u64::from(self.faulted));
        metrics.add("attack_wrong_output", u64::from(self.wrong_output));
        metrics.add("attack_benign", u64::from(self.benign));
        metrics.add("attack_timeout", u64::from(self.timeout));
        metrics.add("attack_static_detected", u64::from(self.static_detected));
        metrics.add("attack_oracle_true_pos", u64::from(self.oracle_true_pos));
        metrics.add("attack_oracle_false_pos", u64::from(self.oracle_false_pos));
        metrics.add("attack_oracle_false_neg", u64::from(self.oracle_false_neg));
        metrics.add("attack_oracle_true_neg", u64::from(self.oracle_true_neg));
        for (cause, count) in &self.causes {
            let name = match cause {
                DetectionCause::GuardFail => "attack_cause_guard_fail",
                DetectionCause::SpacingBound => "attack_cause_spacing_bound",
                DetectionCause::DecryptGarble => "attack_cause_decrypt_garble",
                DetectionCause::WildControlFlow => "attack_cause_wild_control_flow",
                DetectionCause::OtherFault => "attack_cause_other_fault",
            };
            metrics.add(name, u64::from(*count));
        }
        for &latency in &self.latencies {
            metrics.observe("attack_detection_latency", latency);
        }
    }

    fn record(&mut self, outcome: TrialOutcome, static_flagged: bool) {
        self.record_caused(outcome, static_flagged, None);
    }

    fn record_caused(
        &mut self,
        outcome: TrialOutcome,
        static_flagged: bool,
        cause: Option<DetectionCause>,
    ) {
        if outcome != TrialOutcome::Inapplicable {
            self.applied += 1;
            if static_flagged {
                self.static_detected += 1;
            }
        }
        if let Some(cause) = cause {
            *self.causes.entry(cause).or_insert(0) += 1;
        }
        match outcome {
            TrialOutcome::Detected { latency_instrs } => {
                self.detected += 1;
                self.latency_sum += latency_instrs;
                self.latencies.push(latency_instrs);
            }
            TrialOutcome::Faulted => self.faulted += 1,
            TrialOutcome::WrongOutput => self.wrong_output += 1,
            TrialOutcome::Benign => self.benign += 1,
            TrialOutcome::Timeout => self.timeout += 1,
            TrialOutcome::Inapplicable => {}
        }
    }

    /// Scores one oracle prediction against the trial's dynamic ground
    /// truth. Only *effective* trials count — benign mutations exercise
    /// nothing (the oracle may flag an edit in dead code that never runs)
    /// and inapplicable ones mutated nothing.
    fn record_prediction(&mut self, outcome: TrialOutcome, predicted: bool) {
        let caught = matches!(
            outcome,
            TrialOutcome::Detected { .. } | TrialOutcome::Faulted
        );
        let effective = !matches!(outcome, TrialOutcome::Benign | TrialOutcome::Inapplicable);
        if !effective {
            return;
        }
        match (predicted, caught) {
            (true, true) => self.oracle_true_pos += 1,
            (true, false) => self.oracle_false_pos += 1,
            (false, true) => self.oracle_false_neg += 1,
            (false, false) => self.oracle_true_neg += 1,
        }
    }
}

/// Whether the static verifier flags `image` against `config` — the
/// zero-execution detection baseline. A tampered image caught here never
/// needs to run at all; compare with the runtime latencies the dynamic
/// trials measure.
pub fn static_detects(image: &Image, config: &SecMonConfig) -> bool {
    !flexprot_verify::verify(image, config).is_clean()
}

/// Runs one attacked trial (dynamic classification only).
pub fn run_trial(
    protected: &Protected,
    expected_output: &str,
    attack: Attack,
    rng: &mut Rng64,
    sim: &SimConfig,
) -> TrialOutcome {
    run_trial_attributed(protected, expected_output, attack, rng, sim).0
}

/// Like [`run_trial`] but also reports which event or fault proved a
/// caught run (`None` for benign/wrong-output/timeout/inapplicable).
pub fn run_trial_attributed(
    protected: &Protected,
    expected_output: &str,
    attack: Attack,
    rng: &mut Rng64,
    sim: &SimConfig,
) -> (TrialOutcome, Option<DetectionCause>) {
    let mut mutated = protected.clone();
    if !attack.apply(&mut mutated.image, rng) {
        return (TrialOutcome::Inapplicable, None);
    }
    classify(&mutated, expected_output, sim)
}

fn classify(
    mutated: &Protected,
    expected_output: &str,
    sim: &SimConfig,
) -> (TrialOutcome, Option<DetectionCause>) {
    let (sink, recorder) = Recorder::new().shared();
    let result = mutated.run_traced(sim.clone(), &sink);
    let first_failure = recorder.borrow().first_failure();
    classify_result(&result, first_failure, expected_output)
}

/// Classifies a finished attacked run from its result and the first
/// monitor failure event the trial's recorder captured.
fn classify_result(
    result: &RunResult,
    first_failure: Option<TraceEvent>,
    expected_output: &str,
) -> (TrialOutcome, Option<DetectionCause>) {
    let outcome = match result.outcome {
        Outcome::TamperDetected(_) => TrialOutcome::Detected {
            latency_instrs: result.stats.instructions,
        },
        Outcome::Fault(_) => TrialOutcome::Faulted,
        Outcome::OutOfFuel => TrialOutcome::Timeout,
        Outcome::Exit(0) if result.output == expected_output => TrialOutcome::Benign,
        Outcome::Exit(_) => TrialOutcome::WrongOutput,
    };
    let cause = match &result.outcome {
        // A tamper detection is proven by the monitor's own failure
        // event, recorded during the run.
        Outcome::TamperDetected(_) => Some(match first_failure {
            Some(TraceEvent::SpacingExceeded { .. }) => DetectionCause::SpacingBound,
            _ => DetectionCause::GuardFail,
        }),
        Outcome::Fault(Fault::IllegalInstruction { .. }) => Some(DetectionCause::DecryptGarble),
        Outcome::Fault(Fault::WildPc { .. }) => Some(DetectionCause::WildControlFlow),
        Outcome::Fault(_) => Some(DetectionCause::OtherFault),
        Outcome::Exit(_) | Outcome::OutOfFuel => None,
    };
    (outcome, cause)
}

/// Runs `trials` randomized instances of `attack` and aggregates them.
///
/// The fuel limit in `sim` should be modest (attacked binaries can loop);
/// a few times the baseline instruction count works well.
///
/// One simulator [`Machine`] is re-armed across trials (its page table
/// and cache arrays are reused), which matters when an engine batches
/// hundreds of attack cells; the classification is identical to running
/// each trial on a fresh machine.
pub fn evaluate(
    protected: &Protected,
    expected_output: &str,
    attack: Attack,
    trials: u32,
    seed: u64,
    sim: &SimConfig,
) -> AttackSummary {
    let mut rng = Rng64::new(seed);
    let mut summary = AttackSummary::default();
    let mut machine: Option<Machine<SecMon>> = None;
    // One coverage analysis of the pristine image serves every trial.
    let oracle = crate::oracle::StaticOracle::new(&protected.image, &protected.secmon);
    for _ in 0..trials {
        let mut mutated = protected.clone();
        if !attack.apply(&mut mutated.image, &mut rng) {
            summary.record(TrialOutcome::Inapplicable, false);
            continue;
        }
        let flagged = static_detects(&mutated.image, &mutated.secmon);
        let predicted = oracle.predicts(&protected.image, &mutated.image);
        match machine.as_mut() {
            Some(m) => mutated.rearm(m),
            None => machine = Some(mutated.machine(sim.clone())),
        }
        let m = machine.as_mut().expect("machine built on first trial");
        let (sink, recorder) = Recorder::new().shared();
        m.monitor_mut().attach_sink(sink.clone());
        m.attach_sink(sink);
        let result = m.run();
        let first_failure = recorder.borrow().first_failure();
        let (outcome, cause) = classify_result(&result, first_failure, expected_output);
        summary.record_caused(outcome, flagged, cause);
        summary.record_prediction(outcome, predicted);
    }
    summary
}

/// Runs one mutated image through the shared trial machinery, scoring the
/// static baseline and the oracle prediction like [`evaluate`] does.
fn run_planned_trial(
    protected: &Protected,
    mutated: &Protected,
    expected_output: &str,
    oracle: &crate::oracle::StaticOracle,
    machine: &mut Option<Machine<SecMon>>,
    sim: &SimConfig,
    summary: &mut AttackSummary,
) {
    let flagged = static_detects(&mutated.image, &mutated.secmon);
    let predicted = oracle.predicts(&protected.image, &mutated.image);
    match machine.as_mut() {
        Some(m) => mutated.rearm(m),
        None => *machine = Some(mutated.machine(sim.clone())),
    }
    let m = machine.as_mut().expect("machine built on first trial");
    let (sink, recorder) = Recorder::new().shared();
    m.monitor_mut().attach_sink(sink.clone());
    m.attach_sink(sink);
    let result = m.run();
    let first_failure = recorder.borrow().first_failure();
    let (outcome, cause) = classify_result(&result, first_failure, expected_output);
    summary.record_caused(outcome, flagged, cause);
    summary.record_prediction(outcome, predicted);
}

/// The graph-aware attacker: NOPs out single words following the
/// [`crate::StaticOracle::target_plan`] ranking — cheapest defeat
/// closures (min-cut guards, uncovered surface words) first, cycling
/// through the plan when `trials` exceeds it. Deterministic: no
/// randomness is consumed. Compare against [`evaluate_random_nop`] with
/// the same trial count to measure what the network analysis buys the
/// attacker.
pub fn evaluate_targeted(
    protected: &Protected,
    expected_output: &str,
    trials: u32,
    sim: &SimConfig,
) -> AttackSummary {
    let mut summary = AttackSummary::default();
    let oracle = crate::oracle::StaticOracle::new(&protected.image, &protected.secmon);
    let nop = flexprot_isa::Inst::NOP.encode();
    let targets: Vec<usize> = oracle
        .target_plan()
        .into_iter()
        .filter(|&i| protected.image.text[i] != nop)
        .collect();
    let mut machine: Option<Machine<SecMon>> = None;
    for trial in 0..trials {
        let Some(&index) = targets.get(trial as usize % targets.len().max(1)) else {
            summary.record(TrialOutcome::Inapplicable, false);
            continue;
        };
        let mut mutated = protected.clone();
        mutated.image.text[index] = nop;
        run_planned_trial(
            protected,
            &mutated,
            expected_output,
            &oracle,
            &mut machine,
            sim,
            &mut summary,
        );
    }
    summary
}

/// The baseline the targeted attacker is judged against: NOPs out one
/// *uniformly random* text word per trial — the same single-word edit
/// budget as [`evaluate_targeted`], without the plan.
pub fn evaluate_random_nop(
    protected: &Protected,
    expected_output: &str,
    trials: u32,
    seed: u64,
    sim: &SimConfig,
) -> AttackSummary {
    let mut rng = Rng64::new(seed);
    let mut summary = AttackSummary::default();
    let oracle = crate::oracle::StaticOracle::new(&protected.image, &protected.secmon);
    let nop = flexprot_isa::Inst::NOP.encode();
    let mut machine: Option<Machine<SecMon>> = None;
    for _ in 0..trials {
        let index = rng.index(protected.image.text.len());
        if protected.image.text[index] == nop {
            summary.record(TrialOutcome::Inapplicable, false);
            continue;
        }
        let mut mutated = protected.clone();
        mutated.image.text[index] = nop;
        run_planned_trial(
            protected,
            &mutated,
            expected_output,
            &oracle,
            &mut machine,
            sim,
            &mut summary,
        );
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexprot_core::{protect, EncryptConfig, GuardConfig, ProtectionConfig};
    use flexprot_sim::Machine;

    fn sample() -> (flexprot_isa::Image, String) {
        let image = flexprot_asm::assemble_or_panic(
            r#"
main:   li   $s0, 0
        li   $t0, 20
loop:   addu $s0, $s0, $t0
        addi $t0, $t0, -1
        bgtz $t0, loop
        move $a0, $s0
        li   $v0, 1
        syscall
        li   $v0, 10
        syscall
"#,
        );
        let r = Machine::new(&image, SimConfig::default()).run();
        assert_eq!(r.outcome, Outcome::Exit(0));
        (image, r.output)
    }

    fn fast_sim() -> SimConfig {
        SimConfig {
            max_instructions: 100_000,
            ..SimConfig::default()
        }
    }

    #[test]
    fn unprotected_binary_lets_attacks_through() {
        let (image, expected) = sample();
        let unprotected = protect(&image, &ProtectionConfig::new(), None).unwrap();
        let summary = evaluate(
            &unprotected,
            &expected,
            Attack::BranchFlip,
            40,
            7,
            &fast_sim(),
        );
        assert_eq!(summary.detected, 0, "no monitor, no detections");
        assert!(
            summary.wrong_output > 0,
            "branch flips must corrupt semantics sometimes: {summary:?}"
        );
    }

    #[test]
    fn guarded_binary_detects_bitflips() {
        let (image, expected) = sample();
        let config = ProtectionConfig::new().with_guards(GuardConfig::with_density(1.0));
        let protected = protect(&image, &config, None).unwrap();
        let summary = evaluate(&protected, &expected, Attack::BitFlip, 40, 7, &fast_sim());
        assert!(
            summary.detected > 0,
            "full-density guards must detect some flips: {summary:?}"
        );
        assert!(summary.detection_rate() > 0.5, "{summary:?}");
        assert!(summary.mean_latency().is_some());
    }

    #[test]
    fn encrypted_binary_turns_patches_into_garbage() {
        let (image, expected) = sample();
        let config = ProtectionConfig::new()
            .with_guards(GuardConfig::with_density(1.0))
            .with_encryption(EncryptConfig::whole_program(0xC0DE));
        let protected = protect(&image, &config, None).unwrap();
        let summary = evaluate(
            &protected,
            &expected,
            Attack::CodeInject,
            30,
            11,
            &fast_sim(),
        );
        // The attacker's plaintext payload decrypts to junk: never a clean
        // wrong-output win.
        assert_eq!(
            summary.wrong_output, 0,
            "injection into ciphertext must not succeed cleanly: {summary:?}"
        );
    }

    #[test]
    fn code_inject_succeeds_on_unprotected_plaintext() {
        let (image, expected) = sample();
        let unprotected = protect(&image, &ProtectionConfig::new(), None).unwrap();
        let summary = evaluate(
            &unprotected,
            &expected,
            Attack::CodeInject,
            30,
            11,
            &fast_sim(),
        );
        assert!(
            summary.wrong_output > 0,
            "payload injection must work on unprotected code: {summary:?}"
        );
    }

    #[test]
    fn static_baseline_flags_every_effective_tamper() {
        // With full-density guards and relocation records, every mutation
        // that changes runtime behaviour perturbs a signed bit, so the
        // static verifier must flag it before a single instruction runs.
        let (image, expected) = sample();
        let config = ProtectionConfig::new().with_guards(GuardConfig::with_density(1.0));
        let protected = protect(&image, &config, None).unwrap();
        let mut rng = Rng64::new(21);
        let (mut flagged, mut effective) = (0u32, 0u32);
        for attack in [Attack::BitFlip, Attack::BranchFlip, Attack::NopOut] {
            for _ in 0..12 {
                let mut mutated = protected.clone();
                if !attack.apply(&mut mutated.image, &mut rng) {
                    continue;
                }
                let statically = static_detects(&mutated.image, &mutated.secmon);
                let (outcome, _) = classify(&mutated, &expected, &fast_sim());
                if !matches!(outcome, TrialOutcome::Benign | TrialOutcome::Inapplicable) {
                    effective += 1;
                    assert!(
                        statically,
                        "{}: dynamic {outcome:?} but static verification missed it",
                        attack.name()
                    );
                }
                if statically {
                    flagged += 1;
                }
            }
        }
        assert!(effective > 0, "the attack mix must perturb something");
        assert!(flagged >= effective);
    }

    #[test]
    fn evaluate_reports_the_static_baseline() {
        let (image, expected) = sample();
        let config = ProtectionConfig::new().with_guards(GuardConfig::with_density(1.0));
        let protected = protect(&image, &config, None).unwrap();
        let summary = evaluate(&protected, &expected, Attack::BitFlip, 40, 7, &fast_sim());
        assert!(summary.static_detected > 0, "{summary:?}");
        assert!(summary.static_detection_rate() > 0.5, "{summary:?}");
        assert!(
            summary.static_detected >= summary.detected + summary.faulted + summary.wrong_output,
            "static must dominate the dynamic outcomes: {summary:?}"
        );
    }

    #[test]
    fn oracle_scores_track_dynamic_ground_truth() {
        let (image, expected) = sample();
        let config = ProtectionConfig::new().with_guards(GuardConfig::with_density(1.0));
        let protected = protect(&image, &config, None).unwrap();
        let summary = evaluate(&protected, &expected, Attack::BitFlip, 40, 7, &fast_sim());
        assert!(summary.oracle_trials() > 0, "{summary:?}");
        assert!(summary.oracle_precision() >= 0.9, "{summary:?}");
        assert!(summary.oracle_recall() >= 0.9, "{summary:?}");
    }

    #[test]
    fn guard_detections_are_attributed_to_guard_fail_events() {
        let (image, expected) = sample();
        let config = ProtectionConfig::new().with_guards(GuardConfig::with_density(1.0));
        let protected = protect(&image, &config, None).unwrap();
        let summary = evaluate(&protected, &expected, Attack::BitFlip, 40, 7, &fast_sim());
        assert!(summary.detected > 0, "{summary:?}");
        // Every monitor detection on a guards-only binary is proven by a
        // guard-machinery event, never by a decrypt fault.
        assert_eq!(
            summary.cause_count(DetectionCause::GuardFail)
                + summary.cause_count(DetectionCause::SpacingBound),
            summary.detected,
            "{summary:?}"
        );
        // Faults, if any, carry their own causes; totals must reconcile.
        let total: u32 = summary.causes.values().sum();
        assert_eq!(total, summary.detected + summary.faulted, "{summary:?}");
    }

    #[test]
    fn injection_into_ciphertext_is_attributed_to_decrypt_garble() {
        let (image, expected) = sample();
        let config = ProtectionConfig::new().with_encryption(EncryptConfig::whole_program(0xC0DE));
        let protected = protect(&image, &config, None).unwrap();
        let summary = evaluate(
            &protected,
            &expected,
            Attack::CodeInject,
            30,
            11,
            &fast_sim(),
        );
        // No guards here: whatever got caught was caught by the decrypt
        // path turning the payload into garbage (illegal decode or wild
        // control flow), never by a guard event.
        assert_eq!(summary.cause_count(DetectionCause::GuardFail), 0);
        assert_eq!(summary.cause_count(DetectionCause::SpacingBound), 0);
        assert!(
            summary.cause_count(DetectionCause::DecryptGarble)
                + summary.cause_count(DetectionCause::WildControlFlow)
                + summary.cause_count(DetectionCause::OtherFault)
                > 0,
            "{summary:?}"
        );
    }

    #[test]
    fn machine_reuse_matches_fresh_machine_per_trial() {
        let (image, expected) = sample();
        let config = ProtectionConfig::new().with_guards(GuardConfig::with_density(1.0));
        let protected = protect(&image, &config, None).unwrap();
        let reused = evaluate(&protected, &expected, Attack::BitFlip, 30, 9, &fast_sim());
        // Replay the identical trial stream, but classify each mutation on
        // a freshly constructed machine.
        let mut rng = Rng64::new(9);
        let mut fresh = AttackSummary::default();
        let oracle = crate::oracle::StaticOracle::new(&protected.image, &protected.secmon);
        for _ in 0..30 {
            let mut mutated = protected.clone();
            if !Attack::BitFlip.apply(&mut mutated.image, &mut rng) {
                fresh.record(TrialOutcome::Inapplicable, false);
                continue;
            }
            let flagged = static_detects(&mutated.image, &mutated.secmon);
            let predicted = oracle.predicts(&protected.image, &mutated.image);
            let (outcome, cause) = classify(&mutated, &expected, &fast_sim());
            fresh.record_caused(outcome, flagged, cause);
            fresh.record_prediction(outcome, predicted);
        }
        assert_eq!(reused, fresh, "re-arming must not change classification");
        assert!(reused.applied > 0);
    }

    #[test]
    fn targeted_plan_beats_random_nops_on_sparse_guards() {
        let (image, expected) = sample();
        // A quarter-density network: most words are uncovered and the
        // who-checks-whom graph is weakly connected, so the plan's
        // zero-cost words are real attack surface.
        let config = ProtectionConfig::new().with_guards(GuardConfig {
            key: 0x0BAD_C0DE_CAFE_F00D,
            ..GuardConfig::with_density(0.25)
        });
        let protected = protect(&image, &config, None).unwrap();
        let targeted = evaluate_targeted(&protected, &expected, 40, &fast_sim());
        let random = evaluate_random_nop(&protected, &expected, 40, 7, &fast_sim());
        assert!(targeted.applied > 0 && random.applied > 0);
        assert!(
            targeted.attacker_success_rate() > random.attacker_success_rate(),
            "plan-driven NOPs must beat blind NOPs on a weak network:\n\
             targeted {targeted:?}\nrandom {random:?}"
        );
    }

    #[test]
    fn targeted_attack_is_deterministic_and_contained_by_dense_guards() {
        let (image, expected) = sample();
        let config = ProtectionConfig::new().with_guards(GuardConfig::with_density(1.0));
        let protected = protect(&image, &config, None).unwrap();
        let a = evaluate_targeted(&protected, &expected, 25, &fast_sim());
        let b = evaluate_targeted(&protected, &expected, 25, &fast_sim());
        assert_eq!(a, b, "no randomness is consumed");
        assert_eq!(
            a.wrong_output, 0,
            "full-density coverage leaves the planner nothing free: {a:?}"
        );
        assert!(a.oracle_precision() >= 0.9, "{a:?}");
        assert!(a.oracle_recall() >= 0.9, "{a:?}");
    }

    #[test]
    fn export_metrics_mirrors_the_tallies() {
        let (image, expected) = sample();
        let config = ProtectionConfig::new().with_guards(GuardConfig::with_density(1.0));
        let protected = protect(&image, &config, None).unwrap();
        let summary = evaluate(&protected, &expected, Attack::BitFlip, 40, 7, &fast_sim());
        let mut metrics = Metrics::new();
        summary.export_metrics(&mut metrics);
        assert_eq!(
            metrics.counter("attack_trials_applied"),
            u64::from(summary.applied)
        );
        assert_eq!(
            metrics.counter("attack_detected"),
            u64::from(summary.detected)
        );
        let histogram = metrics
            .histogram("attack_detection_latency")
            .expect("latency histogram");
        assert_eq!(histogram.count(), summary.latencies.len() as u64);
        assert_eq!(histogram.sum(), summary.latency_sum);
        // Exporting twice doubles the counters (additive contract).
        summary.export_metrics(&mut metrics);
        assert_eq!(
            metrics.counter("attack_trials_applied"),
            2 * u64::from(summary.applied)
        );
    }

    #[test]
    fn latency_quantiles() {
        let mut s = AttackSummary::default();
        for latency in [10u64, 20, 30, 40, 50] {
            s.record(
                TrialOutcome::Detected {
                    latency_instrs: latency,
                },
                true,
            );
        }
        assert_eq!(s.latency_quantile(0.0), Some(10));
        assert_eq!(s.latency_quantile(0.5), Some(30));
        assert_eq!(s.latency_quantile(1.0), Some(50));
        assert_eq!(AttackSummary::default().latency_quantile(0.5), None);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = AttackSummary::default();
        a.record(TrialOutcome::Detected { latency_instrs: 5 }, true);
        let mut b = AttackSummary::default();
        b.record(TrialOutcome::WrongOutput, true);
        b.record(TrialOutcome::Benign, false);
        a.merge(&b);
        assert_eq!(a.applied, 3);
        assert_eq!(a.detected, 1);
        assert_eq!(a.wrong_output, 1);
        assert_eq!(a.benign, 1);
    }

    #[test]
    fn summary_rates_are_consistent() {
        let mut s = AttackSummary::default();
        s.record(TrialOutcome::Detected { latency_instrs: 10 }, true);
        s.record(TrialOutcome::Detected { latency_instrs: 30 }, true);
        s.record(TrialOutcome::WrongOutput, false);
        s.record(TrialOutcome::Benign, false);
        s.record(TrialOutcome::Inapplicable, false);
        assert_eq!(s.applied, 4);
        assert_eq!(s.detection_rate(), 2.0 / 3.0);
        assert_eq!(s.attacker_success_rate(), 0.25);
        assert_eq!(s.mean_latency(), Some(20.0));
    }

    #[test]
    fn all_benign_counts_as_full_detection() {
        let mut s = AttackSummary::default();
        s.record(TrialOutcome::Benign, false);
        assert_eq!(s.detection_rate(), 1.0);
        assert_eq!(s.mean_latency(), None);
    }
}
