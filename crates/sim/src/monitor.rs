//! The fetch-path monitor interface — where the secure hardware plugs in.
//!
//! The FPGA of the codesign architecture sits between the processor and
//! instruction memory and additionally snoops the committed instruction
//! stream (a trace-port connection). [`FetchMonitor`] captures exactly those
//! two observation points:
//!
//! * [`FetchMonitor::transform_fetch`] — the functional view: every
//!   instruction word passes through the monitor on its way from memory to
//!   the pipeline, giving the hardware the chance to decrypt it;
//! * [`FetchMonitor::fill_penalty`] — the timing view: decryption hardware
//!   latency is charged when the I-cache fills a line;
//! * [`FetchMonitor::observe_commit`] — the verification view: the monitor
//!   sees each retired instruction (post-decrypt) and may raise a tamper
//!   event.

use std::fmt;

/// Raised by a monitor when it detects tampering; aborts simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TamperEvent {
    /// Program counter of the instruction that triggered detection.
    pub pc: u32,
    /// Human-readable reason (signature mismatch, spacing overflow, …).
    pub reason: String,
}

impl fmt::Display for TamperEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tamper detected at {:#010x}: {}", self.pc, self.reason)
    }
}

/// Hardware model attached to the instruction fetch path.
///
/// Implementations must be deterministic: the simulator may be re-run for
/// profiling and expects identical behaviour.
///
/// [`FetchMonitor::transform_fetch`] must additionally be a *pure function
/// of `(addr, word)`*: the predecoded engine decrypts whole lines at
/// I-cache fill time (via [`FetchMonitor::transform_fill`]) and caches the
/// result, so a transform may be invoked once per line fill instead of once
/// per fetch, for words the pipeline never executes, and again when an
/// invalidated line is functionally refilled. Per-call side effects in the
/// transform would diverge between the reference and predecoded engines.
/// Stateful accounting belongs in [`FetchMonitor::fill_penalty`] (timing)
/// and [`FetchMonitor::observe_commit`] (verification), which keep their
/// exact reference-path call discipline.
pub trait FetchMonitor {
    /// Transforms a fetched instruction word (e.g. decrypts it).
    ///
    /// Called functionally with the word as stored in memory — on every
    /// fetch by the reference engine, per filled word by the default
    /// [`FetchMonitor::transform_fill`]. The default is the identity.
    fn transform_fetch(&mut self, addr: u32, word: u32) -> u32 {
        let _ = addr;
        word
    }

    /// Transforms a whole line of fetched words in place at I-cache fill.
    ///
    /// `words[i]` holds the memory contents of `line_addr + 4 * i`. The
    /// default applies [`FetchMonitor::transform_fetch`] word by word;
    /// line-granularity hardware (a burst decryption unit) can override it
    /// to process the line in one pass. Overrides must stay functionally
    /// identical to the per-word default.
    fn transform_fill(&mut self, line_addr: u32, words: &mut [u32]) {
        for (i, word) in words.iter_mut().enumerate() {
            *word = self.transform_fetch(line_addr + 4 * i as u32, *word);
        }
    }

    /// Extra cycles charged when the I-cache fills the line at `line_addr`.
    ///
    /// This is where decryption-unit latency appears. The default is free.
    fn fill_penalty(&mut self, line_addr: u32, line_words: u32) -> u64 {
        let _ = (line_addr, line_words);
        0
    }

    /// Observes one committed instruction.
    ///
    /// `word` is the post-transform (plaintext) instruction word.
    /// `sequential` is true when `pc` directly followed the previously
    /// committed instruction (no taken control transfer in between).
    ///
    /// Returning `Some` aborts execution with
    /// [`Outcome::TamperDetected`](crate::Outcome::TamperDetected).
    fn observe_commit(&mut self, pc: u32, word: u32, sequential: bool) -> Option<TamperEvent> {
        let _ = (pc, word, sequential);
        None
    }
}

/// A monitor that does nothing — the unprotected baseline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullMonitor;

impl FetchMonitor for NullMonitor {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_monitor_is_transparent() {
        let mut m = NullMonitor;
        assert_eq!(m.transform_fetch(0x400000, 0xABCD), 0xABCD);
        assert_eq!(m.fill_penalty(0x400000, 8), 0);
        assert_eq!(m.observe_commit(0x400000, 0, true), None);
    }

    #[test]
    fn tamper_event_display() {
        let e = TamperEvent {
            pc: 0x0040_0010,
            reason: "signature mismatch".to_owned(),
        };
        assert_eq!(
            e.to_string(),
            "tamper detected at 0x00400010: signature mismatch"
        );
    }
}
