//! Decoded-line store: the decode layer of the fetch/decode/execute split.
//!
//! The store shadows the I-cache way-for-way (indexed by [`Access::slot`]):
//! when the I-cache fills a line, the same slot here is filled with the
//! post-transform (plaintext) words and their decoded [`Inst`] values, so
//! the hot path fetches a ready-to-execute instruction with one bounds
//! check instead of re-reading sparse memory, re-applying the monitor
//! transform and re-running `Inst::decode` on every committed instruction.
//!
//! Invalidation rules (see DESIGN.md "fetch-path architecture v2"):
//!
//! * **eviction** — a fill overwrites the victim way's slot, so evicted
//!   lines vanish implicitly;
//! * **reset** — [`DecodeCache::clear`] drops everything, keeping a reset
//!   machine byte-identical to a fresh one;
//! * **rearm** — decoded lines are *retained* and revalidated against the
//!   raw memory contents at the next fill, so re-running a mutated image
//!   re-decodes only the mutated lines;
//! * **tamper response** — the machine clears the store when a run ends in
//!   tamper detection, so re-keyed monitors never see stale plaintext;
//! * **store to text** — [`DecodeCache::invalidate`] drops the line a
//!   store landed in, preserving self-modifying-code semantics (the
//!   reference engine re-reads memory on every fetch).
//!
//! The store is purely functional: it touches no counters and charges no
//! cycles, which is what keeps [`crate::Stats`] bit-identical between the
//! reference and predecoded engines.
//!
//! [`Access::slot`]: crate::cache::Access::slot

use flexprot_isa::Inst;

use crate::mem::Memory;
use crate::monitor::FetchMonitor;

/// One decoded I-cache line.
#[derive(Debug, Clone)]
struct DecodedLine {
    /// Base address of the line.
    line_addr: u32,
    /// Raw words as read from memory at fill time — the revalidation key.
    raw: Box<[u32]>,
    /// Post-transform (plaintext) words, for `observe_commit` and fault
    /// reporting.
    plain: Box<[u32]>,
    /// Decoded instructions; `None` marks a word that does not decode
    /// (faults only if actually fetched, like the reference engine).
    insts: Box<[Option<Inst>]>,
}

/// Decoded-instruction store parallel to the I-cache.
#[derive(Debug, Clone)]
pub(crate) struct DecodeCache {
    /// One entry per I-cache way, indexed by global slot (`set * ways + way`).
    lines: Vec<Option<DecodedLine>>,
    /// I-cache line size, for mapping store addresses to line bases.
    line_bytes: u32,
    /// Fill-path scratch buffer (avoids a per-fill allocation on the
    /// revalidation fast path).
    scratch: Vec<u32>,
}

impl DecodeCache {
    /// Creates an empty store shadowing `sets * ways` cache slots.
    pub(crate) fn new(sets: u32, ways: u32, line_bytes: u32) -> DecodeCache {
        DecodeCache {
            lines: (0..sets * ways).map(|_| None).collect(),
            line_bytes,
            scratch: Vec::new(),
        }
    }

    /// Fills `slot` with the decoded contents of the line at `line_addr`.
    ///
    /// If the slot already holds that line and the raw memory contents are
    /// unchanged, the existing decode is revalidated and kept — this is the
    /// rearm fast path: only lines whose bytes actually changed pay the
    /// transform + decode again.
    pub(crate) fn fill<M: FetchMonitor>(
        &mut self,
        slot: usize,
        line_addr: u32,
        line_words: u32,
        mem: &Memory,
        monitor: &mut M,
    ) {
        self.scratch.clear();
        self.scratch
            .extend((0..line_words).map(|i| mem.read_u32(line_addr + 4 * i)));
        let revalidated = matches!(
            &self.lines[slot],
            Some(line) if line.line_addr == line_addr && line.raw[..] == self.scratch[..]
        );
        if revalidated {
            return;
        }
        let raw: Box<[u32]> = self.scratch.as_slice().into();
        let mut plain = raw.clone();
        monitor.transform_fill(line_addr, &mut plain);
        let insts = plain.iter().map(|&w| Inst::decode(w).ok()).collect();
        self.lines[slot] = Some(DecodedLine {
            line_addr,
            raw,
            plain,
            insts,
        });
    }

    /// Looks up the decoded instruction and plaintext word for `pc`.
    ///
    /// Returns `None` when the slot is empty or holds a different line
    /// (e.g. after a store-to-text invalidation while the I-cache still
    /// hits) — the caller then refills functionally, charging nothing.
    pub(crate) fn lookup(&self, slot: usize, pc: u32) -> Option<(Option<Inst>, u32)> {
        let line = self.lines[slot].as_ref()?;
        let offset = pc.wrapping_sub(line.line_addr);
        let index = (offset / 4) as usize;
        if offset % 4 != 0 || index >= line.plain.len() {
            return None;
        }
        Some((line.insts[index], line.plain[index]))
    }

    /// Drops the decoded line containing `addr`, wherever it resides.
    ///
    /// Called on stores into the text segment; rare, so a full scan is
    /// fine.
    pub(crate) fn invalidate(&mut self, addr: u32) {
        let line_addr = addr & !(self.line_bytes - 1);
        for entry in &mut self.lines {
            if matches!(entry, Some(line) if line.line_addr == line_addr) {
                *entry = None;
            }
        }
    }

    /// Drops every decoded line (machine reset, tamper response).
    pub(crate) fn clear(&mut self) {
        for entry in &mut self.lines {
            *entry = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::NullMonitor;

    /// Pure XOR transform that counts invocations, to observe the
    /// revalidation fast path.
    #[derive(Debug)]
    struct CountingXor {
        key: u32,
        calls: u32,
    }
    impl FetchMonitor for CountingXor {
        fn transform_fetch(&mut self, _addr: u32, word: u32) -> u32 {
            self.calls += 1;
            word ^ self.key
        }
    }

    fn mem_with_line(line_addr: u32, words: &[u32]) -> Memory {
        let mut mem = Memory::new();
        for (i, &w) in words.iter().enumerate() {
            mem.write_u32(line_addr + 4 * i as u32, w);
        }
        mem
    }

    #[test]
    fn fill_decodes_and_lookup_returns_plaintext() {
        let key = 0x5A5A_5A5A;
        let nop_enc = key; // nop (0) xor key
        let mem = mem_with_line(0x100, &[nop_enc, nop_enc, !0u32 ^ key, nop_enc]);
        let mut dc = DecodeCache::new(2, 2, 16);
        let mut mon = CountingXor { key, calls: 0 };
        dc.fill(1, 0x100, 4, &mem, &mut mon);
        assert_eq!(mon.calls, 4);
        let (inst, word) = dc.lookup(1, 0x104).unwrap();
        assert_eq!(word, 0);
        assert!(inst.is_some());
        // 0xFFFF_FFFF does not decode: stored as None, word still reported.
        let (bad, bad_word) = dc.lookup(1, 0x108).unwrap();
        assert!(bad.is_none());
        assert_eq!(bad_word, !0u32);
    }

    #[test]
    fn refill_with_unchanged_memory_revalidates_without_transform() {
        let mem = mem_with_line(0x200, &[0, 0, 0, 0]);
        let mut dc = DecodeCache::new(2, 2, 16);
        let mut mon = CountingXor { key: 0, calls: 0 };
        dc.fill(0, 0x200, 4, &mem, &mut mon);
        assert_eq!(mon.calls, 4);
        dc.fill(0, 0x200, 4, &mem, &mut mon);
        assert_eq!(mon.calls, 4, "unchanged line must not be re-transformed");
    }

    #[test]
    fn refill_with_mutated_memory_redecodes() {
        let mut mem = mem_with_line(0x200, &[0, 0, 0, 0]);
        let mut dc = DecodeCache::new(2, 2, 16);
        let mut mon = CountingXor { key: 0, calls: 0 };
        dc.fill(0, 0x200, 4, &mem, &mut mon);
        mem.write_u32(0x208, 7);
        dc.fill(0, 0x200, 4, &mem, &mut mon);
        assert_eq!(mon.calls, 8, "mutated line must be re-transformed");
        assert_eq!(dc.lookup(0, 0x208).unwrap().1, 7);
    }

    #[test]
    fn invalidate_drops_only_the_matching_line() {
        let mem = mem_with_line(0x100, &[0; 4]);
        let mem2 = mem_with_line(0x200, &[0; 4]);
        let mut dc = DecodeCache::new(2, 2, 16);
        dc.fill(0, 0x100, 4, &mem, &mut NullMonitor);
        dc.fill(2, 0x200, 4, &mem2, &mut NullMonitor);
        dc.invalidate(0x10C); // inside the first line
        assert!(dc.lookup(0, 0x100).is_none());
        assert!(dc.lookup(2, 0x200).is_some());
    }

    #[test]
    fn lookup_rejects_wrong_line_and_unaligned_pc() {
        let mem = mem_with_line(0x100, &[0; 4]);
        let mut dc = DecodeCache::new(2, 2, 16);
        dc.fill(0, 0x100, 4, &mem, &mut NullMonitor);
        assert!(dc.lookup(0, 0x200).is_none());
        assert!(dc.lookup(0, 0x102).is_none());
        assert!(dc.lookup(1, 0x100).is_none());
    }
}
