//! Set-associative LRU cache timing model.
//!
//! The cache tracks tags only — data always lives in [`crate::mem::Memory`] —
//! because the simulator separates *functional* behaviour from *timing*.
//! That split is what lets the secure monitor implement decryption as a pure
//! per-word transform while its latency is charged on the miss path, exactly
//! where the FPGA sits.

/// Geometry of one cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes. Must be a multiple of `line_bytes * ways`.
    pub size_bytes: u32,
    /// Line size in bytes (power of two, ≥ 4).
    pub line_bytes: u32,
    /// Associativity.
    pub ways: u32,
}

impl CacheConfig {
    /// A 4 KiB, 32-byte-line, 2-way cache — the baseline I-cache of the
    /// experiments.
    pub fn default_icache() -> CacheConfig {
        CacheConfig {
            size_bytes: 4096,
            line_bytes: 32,
            ways: 2,
        }
    }

    /// An 8 KiB, 32-byte-line, 4-way cache — the baseline D-cache.
    pub fn default_dcache() -> CacheConfig {
        CacheConfig {
            size_bytes: 8192,
            line_bytes: 32,
            ways: 4,
        }
    }

    /// Number of sets implied by the geometry.
    pub fn sets(&self) -> u32 {
        self.size_bytes / (self.line_bytes * self.ways)
    }

    /// Words per line.
    pub fn line_words(&self) -> u32 {
        self.line_bytes / 4
    }

    /// Validates the geometry.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if !self.line_bytes.is_power_of_two() || self.line_bytes < 4 {
            return Err(format!(
                "line size {} must be a power of two >= 4",
                self.line_bytes
            ));
        }
        if self.ways == 0 {
            return Err("associativity must be at least 1".to_owned());
        }
        if self.size_bytes == 0 || !self.size_bytes.is_multiple_of(self.line_bytes * self.ways) {
            return Err(format!(
                "size {} is not a multiple of line*ways = {}",
                self.size_bytes,
                self.line_bytes * self.ways
            ));
        }
        if !self.sets().is_power_of_two() {
            return Err(format!("set count {} must be a power of two", self.sets()));
        }
        Ok(())
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Way {
    valid: bool,
    dirty: bool,
    tag: u32,
    lru: u64,
}

/// What an access did, as reported by [`Cache::access`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// Whether the line was already resident.
    pub hit: bool,
    /// Base address of a dirty line that was evicted to make room, if any.
    pub writeback: Option<u32>,
    /// Base address of the accessed line.
    pub line_addr: u32,
    /// Global way index (`set * ways + way`) holding the line after this
    /// access. Stable for as long as the line stays resident, which lets
    /// side structures (the decoded-line store) shadow the cache contents
    /// without re-deriving placement.
    pub slot: usize,
}

/// A set-associative, write-back, write-allocate cache with LRU replacement.
///
/// # Example
///
/// ```
/// use flexprot_sim::{Cache, CacheConfig};
///
/// let mut cache = Cache::new(CacheConfig { size_bytes: 64, line_bytes: 16, ways: 2 });
/// assert!(!cache.access(0x100, false).hit);
/// assert!(cache.access(0x104, false).hit); // same line
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    ways: Vec<Way>,
    tick: u64,
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see [`CacheConfig::validate`]).
    pub fn new(config: CacheConfig) -> Cache {
        if let Err(msg) = config.validate() {
            panic!("invalid cache config: {msg}");
        }
        Cache {
            config,
            ways: vec![Way::default(); (config.sets() * config.ways) as usize],
            tick: 0,
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    fn set_index(&self, addr: u32) -> usize {
        ((addr / self.config.line_bytes) & (self.config.sets() - 1)) as usize
    }

    fn tag(&self, addr: u32) -> u32 {
        addr / self.config.line_bytes / self.config.sets()
    }

    fn line_addr(&self, addr: u32) -> u32 {
        addr & !(self.config.line_bytes - 1)
    }

    /// Performs one access (lookup + fill on miss).
    ///
    /// `write` marks the line dirty; a later eviction of a dirty line
    /// reports a writeback.
    pub fn access(&mut self, addr: u32, write: bool) -> Access {
        self.tick += 1;
        let set = self.set_index(addr);
        let tag = self.tag(addr);
        let ways = self.config.ways as usize;
        let base = set * ways;
        let slots = &mut self.ways[base..base + ways];

        if let Some((way_idx, way)) = slots
            .iter_mut()
            .enumerate()
            .find(|(_, w)| w.valid && w.tag == tag)
        {
            way.lru = self.tick;
            way.dirty |= write;
            return Access {
                hit: true,
                writeback: None,
                line_addr: self.line_addr(addr),
                slot: base + way_idx,
            };
        }

        // Miss: pick invalid way, else LRU.
        let (victim_idx, victim) = slots
            .iter_mut()
            .enumerate()
            .min_by_key(|(_, w)| if w.valid { w.lru + 1 } else { 0 })
            .expect("at least one way");
        let writeback = (victim.valid && victim.dirty).then(|| {
            // Reconstruct the victim's base address from its tag and set.
            (victim.tag * self.config.sets() + set as u32) * self.config.line_bytes
        });
        *victim = Way {
            valid: true,
            dirty: write,
            tag,
            lru: self.tick,
        };
        Access {
            hit: false,
            writeback,
            line_addr: self.line_addr(addr),
            slot: base + victim_idx,
        }
    }

    /// Invalidates every line (e.g. after external code modification).
    pub fn flush(&mut self) {
        for way in &mut self.ways {
            *way = Way::default();
        }
    }

    /// Restores the just-constructed state, reusing the way allocation:
    /// every line invalid and the LRU clock back at zero, so a reset cache
    /// behaves identically to a fresh [`Cache::new`].
    pub fn reset(&mut self) {
        self.flush();
        self.tick = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 2 sets, 2 ways, 16-byte lines.
        Cache::new(CacheConfig {
            size_bytes: 64,
            line_bytes: 16,
            ways: 2,
        })
    }

    #[test]
    fn spatial_locality_hits_within_line() {
        let mut c = tiny();
        assert!(!c.access(0x1000, false).hit);
        for off in (0..16).step_by(4) {
            assert!(c.access(0x1000 + off, false).hit);
        }
        assert!(!c.access(0x1010, false).hit);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Three lines mapping to set 0 (line addr multiples of 32).
        c.access(0x000, false);
        c.access(0x020, false);
        c.access(0x000, false); // refresh line 0
        let a = c.access(0x040, false); // evicts 0x020
        assert!(!a.hit);
        assert!(c.access(0x000, false).hit);
        assert!(!c.access(0x020, false).hit);
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = tiny();
        c.access(0x000, true);
        c.access(0x020, false);
        let a = c.access(0x040, false); // evicts dirty 0x000
        assert_eq!(a.writeback, Some(0x000));
    }

    #[test]
    fn clean_eviction_has_no_writeback() {
        let mut c = tiny();
        c.access(0x000, false);
        c.access(0x020, false);
        assert_eq!(c.access(0x040, false).writeback, None);
    }

    #[test]
    fn writeback_address_reconstruction() {
        let mut c = tiny();
        // Set 1 lines: addresses with bit 4 set (line 16..32), stride 32.
        c.access(0x1010, true);
        c.access(0x2010, false);
        let a = c.access(0x3010, false);
        assert_eq!(a.writeback, Some(0x1010 & !15));
    }

    #[test]
    fn flush_invalidates_everything() {
        let mut c = tiny();
        c.access(0x100, false);
        c.flush();
        assert!(!c.access(0x100, false).hit);
    }

    #[test]
    fn reset_matches_fresh_cache_behaviour() {
        let mut used = tiny();
        // Age the LRU clock and dirty some lines before resetting.
        for addr in [0x000u32, 0x020, 0x040, 0x010] {
            used.access(addr, true);
        }
        used.reset();
        let mut fresh = tiny();
        for addr in [0x000u32, 0x020, 0x000, 0x040, 0x020] {
            assert_eq!(used.access(addr, false), fresh.access(addr, false));
        }
    }

    #[test]
    fn slot_is_stable_while_line_is_resident() {
        let mut c = tiny();
        let miss = c.access(0x000, false);
        assert!(!miss.hit);
        let hit = c.access(0x004, false);
        assert!(hit.hit);
        assert_eq!(hit.slot, miss.slot);
        // A second line in the same set takes the other way.
        let other = c.access(0x020, false);
        assert_ne!(other.slot, miss.slot);
        assert_eq!(other.slot / 2, miss.slot / 2); // same set, 2 ways
                                                   // Evicting the LRU line reuses its slot.
        c.access(0x000, false);
        let evict = c.access(0x040, false); // evicts 0x020
        assert_eq!(evict.slot, other.slot);
    }

    #[test]
    fn config_validation() {
        assert!(CacheConfig {
            size_bytes: 64,
            line_bytes: 16,
            ways: 2
        }
        .validate()
        .is_ok());
        assert!(CacheConfig {
            size_bytes: 60,
            line_bytes: 16,
            ways: 2
        }
        .validate()
        .is_err());
        assert!(CacheConfig {
            size_bytes: 64,
            line_bytes: 12,
            ways: 2
        }
        .validate()
        .is_err());
        assert!(CacheConfig {
            size_bytes: 64,
            line_bytes: 16,
            ways: 0
        }
        .validate()
        .is_err());
        // 3 sets: not a power of two.
        assert!(CacheConfig {
            size_bytes: 96,
            line_bytes: 16,
            ways: 2
        }
        .validate()
        .is_err());
    }

    #[test]
    fn default_geometries_are_valid() {
        assert!(CacheConfig::default_icache().validate().is_ok());
        assert!(CacheConfig::default_dcache().validate().is_ok());
    }
}
