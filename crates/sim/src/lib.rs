//! Cycle-approximate SP32 system simulator.
//!
//! This crate is the stand-in for the architectural simulator
//! (SimpleScalar-class) that the original evaluation used. It models:
//!
//! * an in-order CPU executing the SP32 ISA with a simple per-class latency
//!   model ([`cpu::Machine`]),
//! * parameterized set-associative write-back I- and D-caches
//!   ([`cache::Cache`]),
//! * a flat little-endian sparse memory ([`mem::Memory`]),
//! * console syscalls (print/exit) with captured output,
//! * a [`FetchMonitor`] hook on the fetch path, where the FPGA secure
//!   monitor from `flexprot-secmon` plugs in. The hook sees every committed
//!   instruction and every I-cache line fill, exactly like hardware placed
//!   between the processor and instruction memory.
//!
//! The timing model is deliberately simple — base CPI 1, extra latency for
//! multiply/divide, cache misses and monitor fill penalties — because the
//! protection-overhead experiments depend on *relative* cost (instruction
//! count inflation and I-cache miss-path latency), not absolute cycles.
//!
//! # Example
//!
//! ```
//! use flexprot_sim::{Machine, Outcome, SimConfig};
//!
//! let image = flexprot_asm::assemble(r#"
//! main:   li  $a0, 6
//!         li  $t0, 7
//!         mul $a0, $a0, $t0
//!         li  $v0, 1       # print_int
//!         syscall
//!         li  $v0, 10      # exit
//!         syscall
//! "#)?;
//! let result = Machine::new(&image, SimConfig::default()).run();
//! assert_eq!(result.outcome, Outcome::Exit(0));
//! assert_eq!(result.output, "42");
//! # Ok::<(), flexprot_asm::AsmError>(())
//! ```

pub mod cache;
pub mod cpu;
mod decode_cache;
mod exec;
mod fetch;
pub mod mem;
pub mod monitor;
pub mod stats;

pub use cache::{Cache, CacheConfig};
pub use cpu::{EngineKind, Machine, Outcome, RunResult, SimConfig};
pub use monitor::{FetchMonitor, NullMonitor, TamperEvent};
pub use stats::{Fault, Stats};
