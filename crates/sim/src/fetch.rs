//! The fetch path: I-cache lookup, miss timing, fill-path decryption and
//! instruction delivery.
//!
//! Two engines share one timing model ([`EngineKind`]):
//!
//! * **Predecoded** — the monitor's transform runs once per I-cache line
//!   *fill* (via [`FetchMonitor::transform_fill`]), mirroring hardware
//!   that decrypts on the memory side of the cache; decoded instructions
//!   are served from the [`crate::decode_cache`] slot that shadows the
//!   filled way.
//! * **Reference** — the original interpreter: re-read memory, re-apply
//!   [`FetchMonitor::transform_fetch`] and re-run `Inst::decode` on every
//!   fetch. Kept as the semantic baseline for differential testing.
//!
//! Every counter update, trace event and monitor timing call
//! (`fill_penalty`) is shared between the engines, which is what keeps
//! [`crate::Stats`] bit-identical across them.

use flexprot_isa::Inst;
use flexprot_trace::TraceEvent;

use crate::cpu::{EngineKind, Machine, Outcome};
use crate::monitor::FetchMonitor;
use crate::stats::Fault;

impl<M: FetchMonitor> Machine<M> {
    /// Fetches and decodes the instruction at `pc`, charging fetch-path
    /// timing. Returns the decoded instruction and its plaintext word, or
    /// the outcome that aborts the run.
    pub(crate) fn fetch_decode(&mut self, pc: u32) -> Result<(Inst, u32), Outcome> {
        self.stats.cycles += 1;
        self.stats.icache_accesses += 1;
        let access = self.icache.access(pc, false);
        if let Some(sink) = &self.sink {
            sink.emit(&TraceEvent::Fetch {
                pc,
                hit: access.hit,
            });
        }
        if !access.hit {
            self.stats.icache_misses += 1;
            let line_words = u64::from(self.config.icache.line_words());
            let fill = self.config.mem_latency + self.config.burst_word_cycles * (line_words - 1);
            self.stats.cycles += fill;
            let penalty = self
                .monitor
                .fill_penalty(access.line_addr, line_words as u32);
            self.stats.monitor_fill_cycles += penalty;
            self.stats.cycles += penalty;
            if let Some(sink) = &self.sink {
                sink.emit(&TraceEvent::IcacheFill {
                    line_addr: access.line_addr,
                    words: line_words as u32,
                    fill_cycles: fill,
                    decrypt_cycles: penalty,
                });
            }
            if self.config.profile {
                *self.stats.imiss_counts.entry(access.line_addr).or_insert(0) += 1;
            }
            if self.config.engine == EngineKind::Predecoded {
                self.decode.fill(
                    access.slot,
                    access.line_addr,
                    line_words as u32,
                    &self.mem,
                    &mut self.monitor,
                );
            }
        }
        match self.config.engine {
            EngineKind::Predecoded => {
                let (inst, word) = match self.decode.lookup(access.slot, pc) {
                    Some(entry) => entry,
                    None => {
                        // I-cache hit on a line whose decode was dropped
                        // (store to text). Functional refill: no timing —
                        // the reference engine charges nothing here either.
                        self.decode.fill(
                            access.slot,
                            access.line_addr,
                            self.config.icache.line_words(),
                            &self.mem,
                            &mut self.monitor,
                        );
                        self.decode
                            .lookup(access.slot, pc)
                            .expect("line was just filled")
                    }
                };
                match inst {
                    Some(inst) => Ok((inst, word)),
                    None => Err(Outcome::Fault(Fault::IllegalInstruction { pc, word })),
                }
            }
            EngineKind::Reference => {
                let raw = self.mem.read_u32(pc);
                let word = self.monitor.transform_fetch(pc, raw);
                match Inst::decode(word) {
                    Ok(inst) => Ok((inst, word)),
                    Err(_) => Err(Outcome::Fault(Fault::IllegalInstruction { pc, word })),
                }
            }
        }
    }
}
