//! Execution statistics and fault classification.

use std::collections::HashMap;
use std::fmt;

/// Why execution aborted abnormally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// A fetched word failed to decode.
    IllegalInstruction { pc: u32, word: u32 },
    /// A load/store address violated its natural alignment.
    Unaligned { pc: u32, addr: u32 },
    /// The program counter left the text segment.
    WildPc { pc: u32 },
    /// A `break` instruction was executed.
    Break { pc: u32 },
    /// An unknown syscall service was requested.
    BadSyscall { pc: u32, service: u32 },
}

impl Fault {
    /// The faulting program counter.
    pub fn pc(&self) -> u32 {
        match *self {
            Fault::IllegalInstruction { pc, .. }
            | Fault::Unaligned { pc, .. }
            | Fault::WildPc { pc }
            | Fault::Break { pc }
            | Fault::BadSyscall { pc, .. } => pc,
        }
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Fault::IllegalInstruction { pc, word } => {
                write!(f, "illegal instruction {word:#010x} at {pc:#010x}")
            }
            Fault::Unaligned { pc, addr } => {
                write!(f, "unaligned access to {addr:#010x} at {pc:#010x}")
            }
            Fault::WildPc { pc } => write!(f, "pc {pc:#010x} left the text segment"),
            Fault::Break { pc } => write!(f, "break at {pc:#010x}"),
            Fault::BadSyscall { pc, service } => {
                write!(f, "unknown syscall service {service} at {pc:#010x}")
            }
        }
    }
}

/// Counters gathered while simulating.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Stats {
    /// Total simulated cycles.
    pub cycles: u64,
    /// Committed instructions.
    pub instructions: u64,
    /// I-cache accesses (one per committed instruction).
    pub icache_accesses: u64,
    /// I-cache misses.
    pub icache_misses: u64,
    /// Cycles spent in the monitor's fill penalty (decryption hardware).
    pub monitor_fill_cycles: u64,
    /// D-cache accesses.
    pub dcache_accesses: u64,
    /// D-cache misses.
    pub dcache_misses: u64,
    /// Dirty lines written back.
    pub dcache_writebacks: u64,
    /// Taken control transfers (branches taken, jumps, returns).
    pub taken_transfers: u64,
    /// Syscalls executed.
    pub syscalls: u64,
    /// Per-pc execution counts; populated only when profiling is enabled.
    pub exec_counts: HashMap<u32, u64>,
    /// Per-line-address I-cache miss counts; populated only when profiling
    /// is enabled.
    pub imiss_counts: HashMap<u32, u64>,
}

impl Stats {
    /// Cycles per instruction; zero when nothing ran.
    pub fn cpi(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.cycles as f64 / self.instructions as f64
        }
    }

    /// I-cache miss rate in `[0, 1]`.
    pub fn icache_miss_rate(&self) -> f64 {
        if self.icache_accesses == 0 {
            0.0
        } else {
            self.icache_misses as f64 / self.icache_accesses as f64
        }
    }

    /// D-cache miss rate in `[0, 1]`.
    pub fn dcache_miss_rate(&self) -> f64 {
        if self.dcache_accesses == 0 {
            0.0
        } else {
            self.dcache_misses as f64 / self.dcache_accesses as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_handle_zero_denominators() {
        let s = Stats::default();
        assert_eq!(s.cpi(), 0.0);
        assert_eq!(s.icache_miss_rate(), 0.0);
        assert_eq!(s.dcache_miss_rate(), 0.0);
    }

    #[test]
    fn rates_compute() {
        let s = Stats {
            cycles: 150,
            instructions: 100,
            icache_accesses: 100,
            icache_misses: 10,
            dcache_accesses: 50,
            dcache_misses: 5,
            ..Stats::default()
        };
        assert!((s.cpi() - 1.5).abs() < 1e-12);
        assert!((s.icache_miss_rate() - 0.1).abs() < 1e-12);
        assert!((s.dcache_miss_rate() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn fault_display_and_pc() {
        let f = Fault::IllegalInstruction {
            pc: 0x0040_0000,
            word: 0xFFFF_FFFF,
        };
        assert!(f.to_string().contains("illegal instruction"));
        assert_eq!(f.pc(), 0x0040_0000);
        assert_eq!(Fault::WildPc { pc: 4 }.pc(), 4);
    }
}
