//! Flat, sparse, little-endian byte-addressable memory.

use std::collections::HashMap;

use flexprot_isa::Image;

const PAGE_BITS: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_BITS;

/// Sparse memory backed by 4 KiB pages allocated on first touch.
///
/// Reads from never-written locations return zero, mimicking zero-initialised
/// RAM. All accesses are little-endian.
///
/// # Example
///
/// ```
/// use flexprot_sim::mem::Memory;
///
/// let mut mem = Memory::new();
/// mem.write_u32(0x1000, 0xDEAD_BEEF);
/// assert_eq!(mem.read_u32(0x1000), 0xDEAD_BEEF);
/// assert_eq!(mem.read_u16(0x1000), 0xBEEF);
/// assert_eq!(mem.read_u8(0x1003), 0xDE);
/// assert_eq!(mem.read_u32(0x9999_0000), 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Memory {
    pages: HashMap<u32, Box<[u8; PAGE_SIZE]>>,
}

impl Memory {
    /// Creates an empty (all-zero) memory.
    pub fn new() -> Memory {
        Memory::default()
    }

    /// Creates a memory pre-loaded with an image's text and data segments.
    pub fn load(image: &Image) -> Memory {
        let mut mem = Memory::new();
        for (i, &word) in image.text.iter().enumerate() {
            mem.write_u32(image.text_base + 4 * i as u32, word);
        }
        for (i, &byte) in image.data.iter().enumerate() {
            mem.write_u8(image.data_base + i as u32, byte);
        }
        mem
    }

    fn page(&self, addr: u32) -> Option<&[u8; PAGE_SIZE]> {
        self.pages.get(&(addr >> PAGE_BITS)).map(|p| &**p)
    }

    fn page_mut(&mut self, addr: u32) -> &mut [u8; PAGE_SIZE] {
        self.pages
            .entry(addr >> PAGE_BITS)
            .or_insert_with(|| Box::new([0; PAGE_SIZE]))
    }

    /// Reads one byte.
    pub fn read_u8(&self, addr: u32) -> u8 {
        self.page(addr)
            .map_or(0, |p| p[(addr as usize) & (PAGE_SIZE - 1)])
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: u32, value: u8) {
        self.page_mut(addr)[(addr as usize) & (PAGE_SIZE - 1)] = value;
    }

    /// Reads a little-endian halfword. The address may be unaligned; the
    /// caller enforces alignment policy.
    pub fn read_u16(&self, addr: u32) -> u16 {
        u16::from_le_bytes([self.read_u8(addr), self.read_u8(addr.wrapping_add(1))])
    }

    /// Writes a little-endian halfword.
    pub fn write_u16(&mut self, addr: u32, value: u16) {
        let [a, b] = value.to_le_bytes();
        self.write_u8(addr, a);
        self.write_u8(addr.wrapping_add(1), b);
    }

    /// Reads a little-endian word.
    pub fn read_u32(&self, addr: u32) -> u32 {
        u32::from_le_bytes([
            self.read_u8(addr),
            self.read_u8(addr.wrapping_add(1)),
            self.read_u8(addr.wrapping_add(2)),
            self.read_u8(addr.wrapping_add(3)),
        ])
    }

    /// Writes a little-endian word.
    pub fn write_u32(&mut self, addr: u32, value: u32) {
        for (i, byte) in value.to_le_bytes().into_iter().enumerate() {
            self.write_u8(addr.wrapping_add(i as u32), byte);
        }
    }

    /// Reads a NUL-terminated string of at most `max_len` bytes.
    pub fn read_cstr(&self, addr: u32, max_len: usize) -> Vec<u8> {
        let mut out = Vec::new();
        for i in 0..max_len {
            let byte = self.read_u8(addr.wrapping_add(i as u32));
            if byte == 0 {
                break;
            }
            out.push(byte);
        }
        out
    }

    /// Zeroes every resident page in place and reloads `image`'s segments —
    /// functionally identical to a fresh [`Memory::load`], but page
    /// allocations from the previous run are reused instead of freed and
    /// reallocated. Batch drivers lean on this to run many images through
    /// one machine.
    pub fn reset(&mut self, image: &Image) {
        for page in self.pages.values_mut() {
            **page = [0; PAGE_SIZE];
        }
        for (i, &word) in image.text.iter().enumerate() {
            self.write_u32(image.text_base + 4 * i as u32, word);
        }
        for (i, &byte) in image.data.iter().enumerate() {
            self.write_u8(image.data_base + i as u32, byte);
        }
    }

    /// Number of resident pages, for footprint diagnostics.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexprot_isa::Image;

    #[test]
    fn unwritten_memory_reads_zero() {
        let mem = Memory::new();
        assert_eq!(mem.read_u8(0), 0);
        assert_eq!(mem.read_u32(0xFFFF_FFFC), 0);
        assert_eq!(mem.resident_pages(), 0);
    }

    #[test]
    fn word_round_trip_across_page_boundary() {
        let mut mem = Memory::new();
        let addr = (1 << PAGE_BITS) - 2;
        mem.write_u32(addr, 0x1122_3344);
        assert_eq!(mem.read_u32(addr), 0x1122_3344);
        assert_eq!(mem.resident_pages(), 2);
    }

    #[test]
    fn halfword_endianness() {
        let mut mem = Memory::new();
        mem.write_u16(0x100, 0xABCD);
        assert_eq!(mem.read_u8(0x100), 0xCD);
        assert_eq!(mem.read_u8(0x101), 0xAB);
    }

    #[test]
    fn load_places_segments() {
        let mut img = Image::from_text(vec![0x1234_5678]);
        img.data = vec![9, 8, 7];
        let mem = Memory::load(&img);
        assert_eq!(mem.read_u32(img.text_base), 0x1234_5678);
        assert_eq!(mem.read_u8(img.data_base), 9);
        assert_eq!(mem.read_u8(img.data_base + 2), 7);
    }

    #[test]
    fn reset_reuses_pages_and_matches_fresh_load() {
        let mut img = Image::from_text(vec![0xAABB_CCDD]);
        img.data = vec![1, 2, 3];
        let mut mem = Memory::load(&img);
        // Dirty some unrelated memory (the stack, say) before resetting.
        mem.write_u32(0x7FFF_F000, 0xDEAD_BEEF);
        let pages_before = mem.resident_pages();
        mem.reset(&img);
        assert_eq!(mem.resident_pages(), pages_before, "allocations reused");
        let fresh = Memory::load(&img);
        assert_eq!(mem.read_u32(img.text_base), fresh.read_u32(img.text_base));
        assert_eq!(mem.read_u8(img.data_base + 2), 3);
        assert_eq!(mem.read_u32(0x7FFF_F000), 0, "stale state cleared");
    }

    #[test]
    fn cstr_stops_at_nul_and_cap() {
        let mut mem = Memory::new();
        for (i, b) in b"hello\0world".iter().enumerate() {
            mem.write_u8(0x200 + i as u32, *b);
        }
        assert_eq!(mem.read_cstr(0x200, 64), b"hello");
        assert_eq!(mem.read_cstr(0x200, 3), b"hel");
    }
}
