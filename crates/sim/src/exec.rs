//! The execute stage: ALU/branch/memory semantics, D-cache timing and
//! console syscalls.
//!
//! Stores that land in the text segment notify the decode layer
//! ([`Machine::note_text_write`]) so self-modifying code behaves
//! identically under both engines.

use flexprot_isa::{Inst, Reg};
use flexprot_trace::TraceEvent;

use crate::cpu::{Machine, Outcome};
use crate::monitor::FetchMonitor;
use crate::stats::Fault;

/// What executing one instruction asks the commit loop to do next.
pub(crate) enum Step {
    Next,
    Goto(u32),
    Stop(Outcome),
}

impl<M: FetchMonitor> Machine<M> {
    fn reg(&self, r: Reg) -> u32 {
        self.regs[r.index() as usize]
    }

    fn set_reg(&mut self, r: Reg, value: u32) {
        if r != Reg::ZERO {
            self.regs[r.index() as usize] = value;
        }
    }

    /// Invalidates the decoded line covering `addr` if the store landed in
    /// the text segment. A no-op for ordinary data stores (two compares)
    /// and under the reference engine (the store is never looked up).
    fn note_text_write(&mut self, addr: u32) {
        if addr >= self.text_base && addr < self.text_end {
            self.decode.invalidate(addr);
        }
    }

    fn data_access(&mut self, addr: u32, write: bool) {
        self.stats.dcache_accesses += 1;
        let access = self.dcache.access(addr, write);
        if !access.hit {
            self.stats.dcache_misses += 1;
            let line_words = u64::from(self.config.dcache.line_words());
            self.stats.cycles +=
                self.config.mem_latency + self.config.burst_word_cycles * (line_words - 1);
        }
        if access.writeback.is_some() {
            self.stats.dcache_writebacks += 1;
            self.stats.cycles +=
                self.config.burst_word_cycles * u64::from(self.config.dcache.line_words());
        }
        if let Some(sink) = &self.sink {
            sink.emit(&TraceEvent::DataAccess {
                addr,
                write,
                hit: access.hit,
                writeback: access.writeback.is_some(),
            });
        }
    }

    pub(crate) fn execute(&mut self, pc: u32, inst: Inst) -> Step {
        use Inst::*;
        let branch = |cond: bool, off: i16| -> Step {
            if cond {
                Step::Goto(pc.wrapping_add(4).wrapping_add(((off as i32) << 2) as u32))
            } else {
                Step::Next
            }
        };
        match inst {
            Sll { rd, rt, sh } => self.set_reg(rd, self.reg(rt) << sh),
            Srl { rd, rt, sh } => self.set_reg(rd, self.reg(rt) >> sh),
            Sra { rd, rt, sh } => self.set_reg(rd, ((self.reg(rt) as i32) >> sh) as u32),
            Sllv { rd, rt, rs } => self.set_reg(rd, self.reg(rt) << (self.reg(rs) & 31)),
            Srlv { rd, rt, rs } => self.set_reg(rd, self.reg(rt) >> (self.reg(rs) & 31)),
            Srav { rd, rt, rs } => {
                self.set_reg(rd, ((self.reg(rt) as i32) >> (self.reg(rs) & 31)) as u32)
            }
            Jr { rs } => return Step::Goto(self.reg(rs)),
            Jalr { rd, rs } => {
                let target = self.reg(rs);
                self.set_reg(rd, pc.wrapping_add(4));
                return Step::Goto(target);
            }
            Syscall => return self.syscall(pc),
            Break => return Step::Stop(Outcome::Fault(Fault::Break { pc })),
            Mul { rd, rs, rt } => {
                self.stats.cycles += self.config.mul_extra;
                self.set_reg(rd, self.reg(rs).wrapping_mul(self.reg(rt)));
            }
            Div { rd, rs, rt } => {
                self.stats.cycles += self.config.div_extra;
                let (a, b) = (self.reg(rs) as i32, self.reg(rt) as i32);
                self.set_reg(rd, if b == 0 { 0 } else { a.wrapping_div(b) as u32 });
            }
            Rem { rd, rs, rt } => {
                self.stats.cycles += self.config.div_extra;
                let (a, b) = (self.reg(rs) as i32, self.reg(rt) as i32);
                self.set_reg(rd, if b == 0 { 0 } else { a.wrapping_rem(b) as u32 });
            }
            Add { rd, rs, rt } | Addu { rd, rs, rt } => {
                self.set_reg(rd, self.reg(rs).wrapping_add(self.reg(rt)))
            }
            Sub { rd, rs, rt } | Subu { rd, rs, rt } => {
                self.set_reg(rd, self.reg(rs).wrapping_sub(self.reg(rt)))
            }
            And { rd, rs, rt } => self.set_reg(rd, self.reg(rs) & self.reg(rt)),
            Or { rd, rs, rt } => self.set_reg(rd, self.reg(rs) | self.reg(rt)),
            Xor { rd, rs, rt } => self.set_reg(rd, self.reg(rs) ^ self.reg(rt)),
            Nor { rd, rs, rt } => self.set_reg(rd, !(self.reg(rs) | self.reg(rt))),
            Slt { rd, rs, rt } => {
                self.set_reg(rd, u32::from((self.reg(rs) as i32) < (self.reg(rt) as i32)))
            }
            Sltu { rd, rs, rt } => self.set_reg(rd, u32::from(self.reg(rs) < self.reg(rt))),
            Addi { rt, rs, imm } => self.set_reg(rt, self.reg(rs).wrapping_add(imm as i32 as u32)),
            Slti { rt, rs, imm } => {
                self.set_reg(rt, u32::from((self.reg(rs) as i32) < i32::from(imm)))
            }
            Sltiu { rt, rs, imm } => {
                self.set_reg(rt, u32::from(self.reg(rs) < (imm as i32 as u32)))
            }
            Andi { rt, rs, imm } => self.set_reg(rt, self.reg(rs) & u32::from(imm)),
            Ori { rt, rs, imm } => self.set_reg(rt, self.reg(rs) | u32::from(imm)),
            Xori { rt, rs, imm } => self.set_reg(rt, self.reg(rs) ^ u32::from(imm)),
            Lui { rt, imm } => self.set_reg(rt, u32::from(imm) << 16),
            Lb { rt, off, base } => {
                let addr = self.reg(base).wrapping_add(off as i32 as u32);
                self.data_access(addr, false);
                self.set_reg(rt, self.mem.read_u8(addr) as i8 as i32 as u32);
            }
            Lbu { rt, off, base } => {
                let addr = self.reg(base).wrapping_add(off as i32 as u32);
                self.data_access(addr, false);
                self.set_reg(rt, u32::from(self.mem.read_u8(addr)));
            }
            Lh { rt, off, base } => {
                let addr = self.reg(base).wrapping_add(off as i32 as u32);
                if !addr.is_multiple_of(2) {
                    return Step::Stop(Outcome::Fault(Fault::Unaligned { pc, addr }));
                }
                self.data_access(addr, false);
                self.set_reg(rt, self.mem.read_u16(addr) as i16 as i32 as u32);
            }
            Lhu { rt, off, base } => {
                let addr = self.reg(base).wrapping_add(off as i32 as u32);
                if !addr.is_multiple_of(2) {
                    return Step::Stop(Outcome::Fault(Fault::Unaligned { pc, addr }));
                }
                self.data_access(addr, false);
                self.set_reg(rt, u32::from(self.mem.read_u16(addr)));
            }
            Lw { rt, off, base } => {
                let addr = self.reg(base).wrapping_add(off as i32 as u32);
                if !addr.is_multiple_of(4) {
                    return Step::Stop(Outcome::Fault(Fault::Unaligned { pc, addr }));
                }
                self.data_access(addr, false);
                self.set_reg(rt, self.mem.read_u32(addr));
            }
            Sb { rt, off, base } => {
                let addr = self.reg(base).wrapping_add(off as i32 as u32);
                self.data_access(addr, true);
                self.mem.write_u8(addr, self.reg(rt) as u8);
                self.note_text_write(addr);
            }
            Sh { rt, off, base } => {
                let addr = self.reg(base).wrapping_add(off as i32 as u32);
                if !addr.is_multiple_of(2) {
                    return Step::Stop(Outcome::Fault(Fault::Unaligned { pc, addr }));
                }
                self.data_access(addr, true);
                self.mem.write_u16(addr, self.reg(rt) as u16);
                self.note_text_write(addr);
            }
            Sw { rt, off, base } => {
                let addr = self.reg(base).wrapping_add(off as i32 as u32);
                if !addr.is_multiple_of(4) {
                    return Step::Stop(Outcome::Fault(Fault::Unaligned { pc, addr }));
                }
                self.data_access(addr, true);
                self.mem.write_u32(addr, self.reg(rt));
                self.note_text_write(addr);
            }
            Beq { rs, rt, off } => return branch(self.reg(rs) == self.reg(rt), off),
            Bne { rs, rt, off } => return branch(self.reg(rs) != self.reg(rt), off),
            Blez { rs, off } => return branch(self.reg(rs) as i32 <= 0, off),
            Bgtz { rs, off } => return branch(self.reg(rs) as i32 > 0, off),
            Bltz { rs, off } => return branch((self.reg(rs) as i32) < 0, off),
            Bgez { rs, off } => return branch(self.reg(rs) as i32 >= 0, off),
            J { target } => return Step::Goto(target << 2),
            Jal { target } => {
                self.set_reg(Reg::RA, pc.wrapping_add(4));
                return Step::Goto(target << 2);
            }
        }
        Step::Next
    }

    fn syscall(&mut self, pc: u32) -> Step {
        self.stats.syscalls += 1;
        let service = self.reg(Reg::V0);
        let a0 = self.reg(Reg::A0);
        match service {
            1 => self.output.push_str(&(a0 as i32).to_string()),
            4 => {
                let bytes = self.mem.read_cstr(a0, 1 << 16);
                self.output.push_str(&String::from_utf8_lossy(&bytes));
            }
            10 => return Step::Stop(Outcome::Exit(0)),
            11 => self.output.push((a0 as u8) as char),
            17 => return Step::Stop(Outcome::Exit(a0 as i32)),
            34 => self.output.push_str(&format!("{a0:08x}")),
            other => return Step::Stop(Outcome::Fault(Fault::BadSyscall { pc, service: other })),
        }
        Step::Next
    }
}
