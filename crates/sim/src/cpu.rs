//! The in-order CPU model and top-level [`Machine`].

use flexprot_isa::{Image, Inst, Reg, STACK_TOP};
use flexprot_trace::{SharedSink, TraceEvent};

use crate::cache::{Cache, CacheConfig};
use crate::mem::Memory;
use crate::monitor::{FetchMonitor, NullMonitor, TamperEvent};
use crate::stats::{Fault, Stats};

/// Simulator parameters: cache geometries, latencies and limits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimConfig {
    /// Instruction cache geometry.
    pub icache: CacheConfig,
    /// Data cache geometry.
    pub dcache: CacheConfig,
    /// Cycles for the first word of a memory access (miss latency).
    pub mem_latency: u64,
    /// Cycles per additional word of a burst fill.
    pub burst_word_cycles: u64,
    /// Extra cycles for `mul`.
    pub mul_extra: u64,
    /// Extra cycles for `div`/`rem`.
    pub div_extra: u64,
    /// Instruction budget; exceeding it yields [`Outcome::OutOfFuel`].
    pub max_instructions: u64,
    /// Record per-pc execution counts and per-line miss counts.
    pub profile: bool,
}

impl Default for SimConfig {
    fn default() -> SimConfig {
        SimConfig {
            icache: CacheConfig::default_icache(),
            dcache: CacheConfig::default_dcache(),
            mem_latency: 20,
            burst_word_cycles: 2,
            mul_extra: 3,
            div_extra: 15,
            max_instructions: 200_000_000,
            profile: false,
        }
    }
}

impl SimConfig {
    /// Returns a copy with profiling enabled.
    pub fn with_profile(mut self) -> SimConfig {
        self.profile = true;
        self
    }
}

/// How a simulation ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// The program called the exit syscall with this code.
    Exit(i32),
    /// The secure monitor raised a tamper event.
    TamperDetected(TamperEvent),
    /// Execution faulted.
    Fault(Fault),
    /// The instruction budget was exhausted.
    OutOfFuel,
}

impl Outcome {
    /// True for a clean `Exit(0)`.
    pub fn is_success(&self) -> bool {
        matches!(self, Outcome::Exit(0))
    }
}

/// Everything a finished simulation produced.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// How execution ended.
    pub outcome: Outcome,
    /// Performance counters.
    pub stats: Stats,
    /// Captured console output.
    pub output: String,
}

/// A complete simulated system: CPU, caches, memory and a fetch monitor.
///
/// The monitor type parameter defaults to [`NullMonitor`] (no protection
/// hardware). The secure monitor from `flexprot-secmon` implements
/// [`FetchMonitor`] and slots in here.
#[derive(Debug, Clone)]
pub struct Machine<M: FetchMonitor = NullMonitor> {
    regs: [u32; 32],
    pc: u32,
    prev_pc: Option<u32>,
    mem: Memory,
    icache: Cache,
    dcache: Cache,
    stats: Stats,
    output: String,
    config: SimConfig,
    monitor: M,
    text_base: u32,
    text_end: u32,
    sink: Option<SharedSink>,
}

impl Machine<NullMonitor> {
    /// Builds an unprotected machine loaded with `image`.
    ///
    /// # Panics
    ///
    /// Panics if a cache geometry in `config` is invalid.
    pub fn new(image: &Image, config: SimConfig) -> Machine<NullMonitor> {
        Machine::with_monitor(image, config, NullMonitor)
    }
}

impl<M: FetchMonitor> Machine<M> {
    /// Builds a machine with the given fetch-path monitor attached.
    ///
    /// # Panics
    ///
    /// Panics if a cache geometry in `config` is invalid.
    pub fn with_monitor(image: &Image, config: SimConfig, monitor: M) -> Machine<M> {
        let mut regs = [0u32; 32];
        regs[Reg::SP.index() as usize] = STACK_TOP;
        regs[Reg::FP.index() as usize] = STACK_TOP;
        Machine {
            regs,
            pc: image.entry,
            prev_pc: None,
            mem: Memory::load(image),
            icache: Cache::new(config.icache),
            dcache: Cache::new(config.dcache),
            stats: Stats::default(),
            output: String::new(),
            config,
            monitor,
            text_base: image.text_base,
            text_end: image.text_end(),
            sink: None,
        }
    }

    /// Attaches an observability sink; every fetch, cache fill, data
    /// access and commit is reported to it, plus a final
    /// [`TraceEvent::RunEnd`] carrying the authoritative [`Stats`]
    /// counters. With no sink attached (the default) the hot path pays
    /// one branch and timing is unchanged.
    pub fn attach_sink(&mut self, sink: SharedSink) {
        self.sink = Some(sink);
    }

    fn reg(&self, r: Reg) -> u32 {
        self.regs[r.index() as usize]
    }

    fn set_reg(&mut self, r: Reg, value: u32) {
        if r != Reg::ZERO {
            self.regs[r.index() as usize] = value;
        }
    }

    /// Read access to the monitor (e.g. to inspect verification counters).
    pub fn monitor(&self) -> &M {
        &self.monitor
    }

    /// Mutable access to the monitor (e.g. to attach an observability sink
    /// after [`Machine::reset_with_monitor`]).
    pub fn monitor_mut(&mut self) -> &mut M {
        &mut self.monitor
    }

    /// Re-arms the machine to run `image` from scratch, reusing the cache
    /// and memory allocations of the previous run instead of reallocating.
    ///
    /// Registers, pc, caches, stats, captured output and the observability
    /// sink are all restored to their just-constructed state, so a reset
    /// machine produces byte-identical results to a fresh
    /// [`Machine::with_monitor`] under the same config. The monitor is left
    /// untouched — stateless monitors (e.g. [`NullMonitor`]) can be reused
    /// directly; monitors with per-run state must be re-provisioned via
    /// [`Machine::reset_with_monitor`].
    pub fn reset(&mut self, image: &Image) {
        self.regs = [0; 32];
        self.regs[Reg::SP.index() as usize] = STACK_TOP;
        self.regs[Reg::FP.index() as usize] = STACK_TOP;
        self.pc = image.entry;
        self.prev_pc = None;
        self.mem.reset(image);
        self.icache.reset();
        self.dcache.reset();
        self.stats = Stats::default();
        self.output.clear();
        self.text_base = image.text_base;
        self.text_end = image.text_end();
        self.sink = None;
    }

    /// [`Machine::reset`] plus a fresh monitor, for monitors that carry
    /// per-run state (the secure monitor's guard windows and tamper log).
    pub fn reset_with_monitor(&mut self, image: &Image, monitor: M) {
        self.monitor = monitor;
        self.reset(image);
    }

    /// Runs until exit, fault, tamper detection or fuel exhaustion.
    pub fn run(&mut self) -> RunResult {
        let outcome = self.run_inner();
        if let Some(sink) = &self.sink {
            sink.emit(&TraceEvent::RunEnd {
                cycles: self.stats.cycles,
                instructions: self.stats.instructions,
                icache_misses: self.stats.icache_misses,
                dcache_misses: self.stats.dcache_misses,
                monitor_fill_cycles: self.stats.monitor_fill_cycles,
            });
        }
        RunResult {
            outcome,
            stats: self.stats.clone(),
            output: self.output.clone(),
        }
    }

    fn run_inner(&mut self) -> Outcome {
        loop {
            if self.stats.instructions >= self.config.max_instructions {
                return Outcome::OutOfFuel;
            }
            let pc = self.pc;
            if !pc.is_multiple_of(4) || pc < self.text_base || pc >= self.text_end {
                return Outcome::Fault(Fault::WildPc { pc });
            }

            // --- fetch ---
            self.stats.cycles += 1;
            self.stats.icache_accesses += 1;
            let access = self.icache.access(pc, false);
            if let Some(sink) = &self.sink {
                sink.emit(&TraceEvent::Fetch {
                    pc,
                    hit: access.hit,
                });
            }
            if !access.hit {
                self.stats.icache_misses += 1;
                let line_words = u64::from(self.config.icache.line_words());
                let fill =
                    self.config.mem_latency + self.config.burst_word_cycles * (line_words - 1);
                self.stats.cycles += fill;
                let penalty = self
                    .monitor
                    .fill_penalty(access.line_addr, line_words as u32);
                self.stats.monitor_fill_cycles += penalty;
                self.stats.cycles += penalty;
                if let Some(sink) = &self.sink {
                    sink.emit(&TraceEvent::IcacheFill {
                        line_addr: access.line_addr,
                        words: line_words as u32,
                        fill_cycles: fill,
                        decrypt_cycles: penalty,
                    });
                }
                if self.config.profile {
                    *self.stats.imiss_counts.entry(access.line_addr).or_insert(0) += 1;
                }
            }
            let raw = self.mem.read_u32(pc);
            let word = self.monitor.transform_fetch(pc, raw);
            let inst = match Inst::decode(word) {
                Ok(inst) => inst,
                Err(_) => return Outcome::Fault(Fault::IllegalInstruction { pc, word }),
            };

            // --- commit observation (guard verification) ---
            let sequential = self.prev_pc == Some(pc.wrapping_sub(4));
            if let Some(event) = self.monitor.observe_commit(pc, word, sequential) {
                return Outcome::TamperDetected(event);
            }
            self.stats.instructions += 1;
            if let Some(sink) = &self.sink {
                sink.emit(&TraceEvent::Commit { pc });
            }
            if self.config.profile {
                *self.stats.exec_counts.entry(pc).or_insert(0) += 1;
            }
            self.prev_pc = Some(pc);

            // --- execute ---
            match self.execute(pc, inst) {
                Step::Next => self.pc = pc.wrapping_add(4),
                Step::Goto(target) => {
                    self.stats.taken_transfers += 1;
                    self.pc = target;
                }
                Step::Stop(outcome) => return outcome,
            }
        }
    }

    fn data_access(&mut self, addr: u32, write: bool) {
        self.stats.dcache_accesses += 1;
        let access = self.dcache.access(addr, write);
        if !access.hit {
            self.stats.dcache_misses += 1;
            let line_words = u64::from(self.config.dcache.line_words());
            self.stats.cycles +=
                self.config.mem_latency + self.config.burst_word_cycles * (line_words - 1);
        }
        if access.writeback.is_some() {
            self.stats.dcache_writebacks += 1;
            self.stats.cycles +=
                self.config.burst_word_cycles * u64::from(self.config.dcache.line_words());
        }
        if let Some(sink) = &self.sink {
            sink.emit(&TraceEvent::DataAccess {
                addr,
                write,
                hit: access.hit,
                writeback: access.writeback.is_some(),
            });
        }
    }

    fn execute(&mut self, pc: u32, inst: Inst) -> Step {
        use Inst::*;
        let branch = |cond: bool, off: i16| -> Step {
            if cond {
                Step::Goto(pc.wrapping_add(4).wrapping_add(((off as i32) << 2) as u32))
            } else {
                Step::Next
            }
        };
        match inst {
            Sll { rd, rt, sh } => self.set_reg(rd, self.reg(rt) << sh),
            Srl { rd, rt, sh } => self.set_reg(rd, self.reg(rt) >> sh),
            Sra { rd, rt, sh } => self.set_reg(rd, ((self.reg(rt) as i32) >> sh) as u32),
            Sllv { rd, rt, rs } => self.set_reg(rd, self.reg(rt) << (self.reg(rs) & 31)),
            Srlv { rd, rt, rs } => self.set_reg(rd, self.reg(rt) >> (self.reg(rs) & 31)),
            Srav { rd, rt, rs } => {
                self.set_reg(rd, ((self.reg(rt) as i32) >> (self.reg(rs) & 31)) as u32)
            }
            Jr { rs } => return Step::Goto(self.reg(rs)),
            Jalr { rd, rs } => {
                let target = self.reg(rs);
                self.set_reg(rd, pc.wrapping_add(4));
                return Step::Goto(target);
            }
            Syscall => return self.syscall(pc),
            Break => return Step::Stop(Outcome::Fault(Fault::Break { pc })),
            Mul { rd, rs, rt } => {
                self.stats.cycles += self.config.mul_extra;
                self.set_reg(rd, self.reg(rs).wrapping_mul(self.reg(rt)));
            }
            Div { rd, rs, rt } => {
                self.stats.cycles += self.config.div_extra;
                let (a, b) = (self.reg(rs) as i32, self.reg(rt) as i32);
                self.set_reg(rd, if b == 0 { 0 } else { a.wrapping_div(b) as u32 });
            }
            Rem { rd, rs, rt } => {
                self.stats.cycles += self.config.div_extra;
                let (a, b) = (self.reg(rs) as i32, self.reg(rt) as i32);
                self.set_reg(rd, if b == 0 { 0 } else { a.wrapping_rem(b) as u32 });
            }
            Add { rd, rs, rt } | Addu { rd, rs, rt } => {
                self.set_reg(rd, self.reg(rs).wrapping_add(self.reg(rt)))
            }
            Sub { rd, rs, rt } | Subu { rd, rs, rt } => {
                self.set_reg(rd, self.reg(rs).wrapping_sub(self.reg(rt)))
            }
            And { rd, rs, rt } => self.set_reg(rd, self.reg(rs) & self.reg(rt)),
            Or { rd, rs, rt } => self.set_reg(rd, self.reg(rs) | self.reg(rt)),
            Xor { rd, rs, rt } => self.set_reg(rd, self.reg(rs) ^ self.reg(rt)),
            Nor { rd, rs, rt } => self.set_reg(rd, !(self.reg(rs) | self.reg(rt))),
            Slt { rd, rs, rt } => {
                self.set_reg(rd, u32::from((self.reg(rs) as i32) < (self.reg(rt) as i32)))
            }
            Sltu { rd, rs, rt } => self.set_reg(rd, u32::from(self.reg(rs) < self.reg(rt))),
            Addi { rt, rs, imm } => self.set_reg(rt, self.reg(rs).wrapping_add(imm as i32 as u32)),
            Slti { rt, rs, imm } => {
                self.set_reg(rt, u32::from((self.reg(rs) as i32) < i32::from(imm)))
            }
            Sltiu { rt, rs, imm } => {
                self.set_reg(rt, u32::from(self.reg(rs) < (imm as i32 as u32)))
            }
            Andi { rt, rs, imm } => self.set_reg(rt, self.reg(rs) & u32::from(imm)),
            Ori { rt, rs, imm } => self.set_reg(rt, self.reg(rs) | u32::from(imm)),
            Xori { rt, rs, imm } => self.set_reg(rt, self.reg(rs) ^ u32::from(imm)),
            Lui { rt, imm } => self.set_reg(rt, u32::from(imm) << 16),
            Lb { rt, off, base } => {
                let addr = self.reg(base).wrapping_add(off as i32 as u32);
                self.data_access(addr, false);
                self.set_reg(rt, self.mem.read_u8(addr) as i8 as i32 as u32);
            }
            Lbu { rt, off, base } => {
                let addr = self.reg(base).wrapping_add(off as i32 as u32);
                self.data_access(addr, false);
                self.set_reg(rt, u32::from(self.mem.read_u8(addr)));
            }
            Lh { rt, off, base } => {
                let addr = self.reg(base).wrapping_add(off as i32 as u32);
                if !addr.is_multiple_of(2) {
                    return Step::Stop(Outcome::Fault(Fault::Unaligned { pc, addr }));
                }
                self.data_access(addr, false);
                self.set_reg(rt, self.mem.read_u16(addr) as i16 as i32 as u32);
            }
            Lhu { rt, off, base } => {
                let addr = self.reg(base).wrapping_add(off as i32 as u32);
                if !addr.is_multiple_of(2) {
                    return Step::Stop(Outcome::Fault(Fault::Unaligned { pc, addr }));
                }
                self.data_access(addr, false);
                self.set_reg(rt, u32::from(self.mem.read_u16(addr)));
            }
            Lw { rt, off, base } => {
                let addr = self.reg(base).wrapping_add(off as i32 as u32);
                if !addr.is_multiple_of(4) {
                    return Step::Stop(Outcome::Fault(Fault::Unaligned { pc, addr }));
                }
                self.data_access(addr, false);
                self.set_reg(rt, self.mem.read_u32(addr));
            }
            Sb { rt, off, base } => {
                let addr = self.reg(base).wrapping_add(off as i32 as u32);
                self.data_access(addr, true);
                self.mem.write_u8(addr, self.reg(rt) as u8);
            }
            Sh { rt, off, base } => {
                let addr = self.reg(base).wrapping_add(off as i32 as u32);
                if !addr.is_multiple_of(2) {
                    return Step::Stop(Outcome::Fault(Fault::Unaligned { pc, addr }));
                }
                self.data_access(addr, true);
                self.mem.write_u16(addr, self.reg(rt) as u16);
            }
            Sw { rt, off, base } => {
                let addr = self.reg(base).wrapping_add(off as i32 as u32);
                if !addr.is_multiple_of(4) {
                    return Step::Stop(Outcome::Fault(Fault::Unaligned { pc, addr }));
                }
                self.data_access(addr, true);
                self.mem.write_u32(addr, self.reg(rt));
            }
            Beq { rs, rt, off } => return branch(self.reg(rs) == self.reg(rt), off),
            Bne { rs, rt, off } => return branch(self.reg(rs) != self.reg(rt), off),
            Blez { rs, off } => return branch(self.reg(rs) as i32 <= 0, off),
            Bgtz { rs, off } => return branch(self.reg(rs) as i32 > 0, off),
            Bltz { rs, off } => return branch((self.reg(rs) as i32) < 0, off),
            Bgez { rs, off } => return branch(self.reg(rs) as i32 >= 0, off),
            J { target } => return Step::Goto(target << 2),
            Jal { target } => {
                self.set_reg(Reg::RA, pc.wrapping_add(4));
                return Step::Goto(target << 2);
            }
        }
        Step::Next
    }

    fn syscall(&mut self, pc: u32) -> Step {
        self.stats.syscalls += 1;
        let service = self.reg(Reg::V0);
        let a0 = self.reg(Reg::A0);
        match service {
            1 => self.output.push_str(&(a0 as i32).to_string()),
            4 => {
                let bytes = self.mem.read_cstr(a0, 1 << 16);
                self.output.push_str(&String::from_utf8_lossy(&bytes));
            }
            10 => return Step::Stop(Outcome::Exit(0)),
            11 => self.output.push((a0 as u8) as char),
            17 => return Step::Stop(Outcome::Exit(a0 as i32)),
            34 => self.output.push_str(&format!("{a0:08x}")),
            other => return Step::Stop(Outcome::Fault(Fault::BadSyscall { pc, service: other })),
        }
        Step::Next
    }
}

enum Step {
    Next,
    Goto(u32),
    Stop(Outcome),
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> RunResult {
        let image = flexprot_asm::assemble_or_panic(src);
        Machine::new(&image, SimConfig::default()).run()
    }

    #[test]
    fn arithmetic_and_print() {
        let r = run(r#"
main:   li  $t0, 21
        li  $t1, 2
        mul $a0, $t0, $t1
        li  $v0, 1
        syscall
        li  $v0, 10
        syscall
"#);
        assert_eq!(r.outcome, Outcome::Exit(0));
        assert_eq!(r.output, "42");
    }

    #[test]
    fn reset_run_is_byte_identical_to_fresh_run() {
        let sum = flexprot_asm::assemble_or_panic(
            r#"
main:   li   $t0, 0
        li   $t1, 50
loop:   addu $t0, $t0, $t1
        addi $t1, $t1, -1
        bgtz $t1, loop
        addi $sp, $sp, -4
        sw   $t0, 0($sp)
        lw   $a0, 0($sp)
        li   $v0, 1
        syscall
        li   $v0, 10
        syscall
"#,
        );
        let other = flexprot_asm::assemble_or_panic(
            "main: li $a0, 7\n li $v0, 1\n syscall\n li $v0, 10\n syscall\n",
        );
        let fresh_sum = Machine::new(&sum, SimConfig::default()).run();
        let fresh_other = Machine::new(&other, SimConfig::default()).run();
        // One machine, reset across images: results (stats included) must
        // match fresh machines exactly.
        let mut machine = Machine::new(&other, SimConfig::default());
        machine.run();
        machine.reset(&sum);
        assert_eq!(machine.run(), fresh_sum);
        machine.reset(&other);
        assert_eq!(machine.run(), fresh_other);
    }

    #[test]
    fn exit_code_propagates() {
        let r = run("main: li $a0, 3\n li $v0, 17\n syscall\n");
        assert_eq!(r.outcome, Outcome::Exit(3));
        assert!(!r.outcome.is_success());
    }

    #[test]
    fn loop_sums_to_n() {
        let r = run(r#"
main:   li   $t0, 0          # sum
        li   $t1, 1          # i
        li   $t2, 100        # n
loop:   bgt  $t1, $t2, done
        addu $t0, $t0, $t1
        addi $t1, $t1, 1
        b    loop
done:   move $a0, $t0
        li   $v0, 1
        syscall
        li   $v0, 10
        syscall
"#);
        assert_eq!(r.outcome, Outcome::Exit(0));
        assert_eq!(r.output, "5050");
    }

    #[test]
    fn memory_and_stack() {
        let r = run(r#"
        .data
arr:    .word 5, 6, 7
        .text
main:   la   $t0, arr
        lw   $t1, 4($t0)      # 6
        addi $sp, $sp, -4
        sw   $t1, 0($sp)
        lw   $a0, 0($sp)
        addi $sp, $sp, 4
        li   $v0, 1
        syscall
        li   $v0, 10
        syscall
"#);
        assert_eq!(r.output, "6");
    }

    #[test]
    fn function_call_and_return() {
        let r = run(r#"
main:   li   $a0, 5
        jal  double
        move $a0, $v0
        li   $v0, 1
        syscall
        li   $v0, 10
        syscall
double: addu $v0, $a0, $a0
        jr   $ra
"#);
        assert_eq!(r.output, "10");
    }

    #[test]
    fn recursion_factorial() {
        let r = run(r#"
main:   li   $a0, 6
        jal  fact
        move $a0, $v0
        li   $v0, 1
        syscall
        li   $v0, 10
        syscall
fact:   addi $sp, $sp, -8
        sw   $ra, 4($sp)
        sw   $a0, 0($sp)
        li   $v0, 1
        blez $a0, fact_done
        addi $a0, $a0, -1
        jal  fact
        lw   $a0, 0($sp)
        mul  $v0, $v0, $a0
fact_done:
        lw   $ra, 4($sp)
        addi $sp, $sp, 8
        jr   $ra
"#);
        assert_eq!(r.output, "720");
    }

    #[test]
    fn print_services() {
        let r = run(r#"
        .data
msg:    .asciiz "x="
        .text
main:   la  $a0, msg
        li  $v0, 4
        syscall
        li  $a0, -7
        li  $v0, 1
        syscall
        li  $a0, '\n'
        li  $v0, 11
        syscall
        li  $a0, 0xFF
        li  $v0, 34
        syscall
        li  $v0, 10
        syscall
"#);
        assert_eq!(r.output, "x=-7\n000000ff");
    }

    #[test]
    fn signed_ops() {
        let r = run(r#"
main:   li   $t0, -8
        li   $t1, 3
        div  $t2, $t0, $t1    # -2
        rem  $t3, $t0, $t1    # -2
        addu $a0, $t2, $t3    # -4
        li   $v0, 1
        syscall
        li   $v0, 10
        syscall
"#);
        assert_eq!(r.output, "-4");
    }

    #[test]
    fn division_by_zero_yields_zero() {
        let r = run(r#"
main:   li  $t0, 9
        div $a0, $t0, $zero
        li  $v0, 1
        syscall
        li  $v0, 10
        syscall
"#);
        assert_eq!(r.output, "0");
    }

    #[test]
    fn zero_register_ignores_writes() {
        let r = run(r#"
main:   li   $t0, 5
        addu $zero, $t0, $t0
        move $a0, $zero
        li   $v0, 1
        syscall
        li   $v0, 10
        syscall
"#);
        assert_eq!(r.output, "0");
    }

    #[test]
    fn illegal_instruction_faults() {
        // `jr $ra` with ra=0 leaves text -> WildPc.
        let r = run("main: jr $ra\n");
        assert!(matches!(r.outcome, Outcome::Fault(Fault::WildPc { .. })));
    }

    #[test]
    fn break_faults() {
        let r = run("main: break\n");
        assert!(matches!(r.outcome, Outcome::Fault(Fault::Break { .. })));
    }

    #[test]
    fn unaligned_word_access_faults() {
        let r = run("main: li $t0, 0x10010001\n lw $t1, 0($t0)\n");
        assert!(matches!(r.outcome, Outcome::Fault(Fault::Unaligned { .. })));
    }

    #[test]
    fn bad_syscall_faults() {
        let r = run("main: li $v0, 99\n syscall\n");
        assert!(matches!(
            r.outcome,
            Outcome::Fault(Fault::BadSyscall { service: 99, .. })
        ));
    }

    #[test]
    fn fuel_limit_stops_infinite_loop() {
        let image = flexprot_asm::assemble_or_panic("main: b main\n");
        let config = SimConfig {
            max_instructions: 1000,
            ..SimConfig::default()
        };
        let r = Machine::new(&image, config).run();
        assert_eq!(r.outcome, Outcome::OutOfFuel);
        assert_eq!(r.stats.instructions, 1000);
    }

    #[test]
    fn stats_count_instructions_and_caches() {
        let r = run("main: li $v0, 10\n li $a0, 0\n syscall\n");
        assert_eq!(r.stats.instructions, 3);
        assert_eq!(r.stats.icache_accesses, 3);
        // All three words share one line: exactly one cold miss.
        assert_eq!(r.stats.icache_misses, 1);
        assert!(r.stats.cycles > 3);
    }

    #[test]
    fn profiling_collects_exec_counts() {
        let image = flexprot_asm::assemble_or_panic(
            r#"
main:   li   $t0, 3
loop:   addi $t0, $t0, -1
        bgtz $t0, loop
        li   $v0, 10
        li   $a0, 0
        syscall
"#,
        );
        let r = Machine::new(&image, SimConfig::default().with_profile()).run();
        assert_eq!(r.outcome, Outcome::Exit(0));
        let loop_pc = image.symbol("loop").unwrap();
        assert_eq!(r.stats.exec_counts.get(&loop_pc), Some(&3));
        assert_eq!(r.stats.exec_counts.get(&image.entry), Some(&1));
        assert!(!r.stats.imiss_counts.is_empty());
    }

    #[test]
    fn monitor_transform_and_penalty_are_applied() {
        #[derive(Debug)]
        struct XorMonitor {
            key: u32,
            fills: u32,
        }
        impl FetchMonitor for XorMonitor {
            fn transform_fetch(&mut self, _addr: u32, word: u32) -> u32 {
                word ^ self.key
            }
            fn fill_penalty(&mut self, _line_addr: u32, _line_words: u32) -> u64 {
                self.fills += 1;
                7
            }
        }

        let mut image = flexprot_asm::assemble_or_panic(
            "main: li $a0, 9\n li $v0, 1\n syscall\n li $v0, 10\n li $a0, 0\n syscall\n",
        );
        let key = 0x5A5A_5A5A;
        for word in &mut image.text {
            *word ^= key;
        }
        let monitor = XorMonitor { key, fills: 0 };
        let mut machine = Machine::with_monitor(&image, SimConfig::default(), monitor);
        let r = machine.run();
        assert_eq!(r.outcome, Outcome::Exit(0));
        assert_eq!(r.output, "9");
        assert_eq!(machine.monitor().fills, 1);
        assert_eq!(r.stats.monitor_fill_cycles, 7);
    }

    #[test]
    fn monitor_tamper_event_aborts() {
        #[derive(Debug)]
        struct TripAtThird(u32);
        impl FetchMonitor for TripAtThird {
            fn observe_commit(&mut self, pc: u32, _w: u32, _seq: bool) -> Option<TamperEvent> {
                self.0 += 1;
                (self.0 == 3).then(|| TamperEvent {
                    pc,
                    reason: "test trip".to_owned(),
                })
            }
        }
        let image =
            flexprot_asm::assemble_or_panic("main: nop\n nop\n nop\n nop\n li $v0, 10\n syscall\n");
        let r = Machine::with_monitor(&image, SimConfig::default(), TripAtThird(0)).run();
        match r.outcome {
            Outcome::TamperDetected(event) => {
                assert_eq!(event.pc, image.entry + 8);
                // Two instructions committed before the third was blocked.
                assert_eq!(r.stats.instructions, 2);
            }
            other => panic!("expected tamper, got {other:?}"),
        }
    }

    #[test]
    fn sequential_flag_tracks_control_flow() {
        #[derive(Debug, Default)]
        struct SeqLog(Vec<bool>);
        impl FetchMonitor for SeqLog {
            fn observe_commit(&mut self, _pc: u32, _w: u32, seq: bool) -> Option<TamperEvent> {
                self.0.push(seq);
                None
            }
        }
        let image = flexprot_asm::assemble_or_panic(
            r#"
main:   b   skip
        nop
skip:   nop
        li  $v0, 10
        li  $a0, 0
        syscall
"#,
        );
        let mut machine = Machine::with_monitor(&image, SimConfig::default(), SeqLog::default());
        let r = machine.run();
        assert_eq!(r.outcome, Outcome::Exit(0));
        // entry: not sequential; skip: reached by taken branch -> not
        // sequential; the rest sequential.
        assert_eq!(machine.monitor().0, vec![false, false, true, true, true]);
    }

    #[test]
    fn attached_sink_reconciles_with_stats() {
        let image = flexprot_asm::assemble_or_panic(
            r#"
        .data
arr:    .word 1, 2, 3, 4
        .text
main:   li   $t0, 4
        la   $t1, arr
        li   $a0, 0
loop:   lw   $t2, 0($t1)
        addu $a0, $a0, $t2
        addi $t1, $t1, 4
        addi $t0, $t0, -1
        bgtz $t0, loop
        sw   $a0, 0($t1)
        li   $v0, 1
        syscall
        li   $v0, 10
        li   $a0, 0
        syscall
"#,
        );
        let baseline = Machine::new(&image, SimConfig::default()).run();

        let (sink, recorder) = flexprot_trace::Recorder::new().shared();
        let mut machine = Machine::new(&image, SimConfig::default());
        machine.attach_sink(sink);
        let traced = machine.run();

        // Attaching a sink must not perturb timing or behaviour.
        assert_eq!(traced.outcome, baseline.outcome);
        assert_eq!(traced.output, baseline.output);
        assert_eq!(traced.stats, baseline.stats);

        // Event-derived counters agree exactly with the Stats counters.
        let recorder = recorder.borrow();
        let m = recorder.metrics();
        assert_eq!(m.counter("icache_accesses"), traced.stats.icache_accesses);
        assert_eq!(m.counter("icache_misses"), traced.stats.icache_misses);
        assert_eq!(m.counter("dcache_accesses"), traced.stats.dcache_accesses);
        assert_eq!(m.counter("dcache_misses"), traced.stats.dcache_misses);
        assert_eq!(
            m.counter("dcache_writebacks"),
            traced.stats.dcache_writebacks
        );
        assert_eq!(
            m.counter("instructions_committed"),
            traced.stats.instructions
        );
        assert_eq!(m.counter("sim_cycles"), traced.stats.cycles);
        assert_eq!(m.counter("sim_instructions"), traced.stats.instructions);
        assert_eq!(m.counter("sim_icache_misses"), traced.stats.icache_misses);
        let fills = m.histogram("icache_fill_cycles").unwrap();
        assert_eq!(fills.count(), traced.stats.icache_misses);
    }

    #[test]
    fn larger_icache_reduces_misses() {
        let src = r#"
main:   li   $t0, 200
loop:   jal  far
        addi $t0, $t0, -1
        bgtz $t0, loop
        li   $v0, 10
        li   $a0, 0
        syscall
far:    jr   $ra
"#;
        let image = flexprot_asm::assemble_or_panic(src);
        let small = SimConfig {
            icache: CacheConfig {
                size_bytes: 64,
                line_bytes: 16,
                ways: 1,
            },
            ..SimConfig::default()
        };
        let big = SimConfig::default();
        let r_small = Machine::new(&image, small).run();
        let r_big = Machine::new(&image, big).run();
        assert_eq!(r_small.outcome, Outcome::Exit(0));
        assert!(r_small.stats.icache_misses >= r_big.stats.icache_misses);
        assert!(r_small.stats.cycles >= r_big.stats.cycles);
    }
}
