//! The top-level [`Machine`]: configuration, lifecycle and the commit loop.
//!
//! The core is layered across three modules (the fetch/decode/execute
//! split):
//!
//! * [`crate::fetch`] — the fetch path: I-cache lookup, miss timing, the
//!   monitor's fill-path transform, and instruction delivery from either
//!   engine;
//! * [`crate::decode_cache`] — the decoded-line store that shadows the
//!   I-cache and eliminates per-step `Inst::decode`;
//! * [`crate::exec`] — the execute stage: ALU/memory/branch semantics,
//!   syscalls and D-cache timing.
//!
//! This module owns what ties them together: the machine state, the
//! per-commit loop with the `observe_commit` guard hook, and reset/rearm
//! lifecycle.

use flexprot_isa::{Image, Reg, STACK_TOP};
use flexprot_trace::{SharedSink, TraceEvent};

use crate::cache::{Cache, CacheConfig};
use crate::decode_cache::DecodeCache;
use crate::exec::Step;
use crate::mem::Memory;
use crate::monitor::{FetchMonitor, NullMonitor, TamperEvent};
use crate::stats::{Fault, Stats};

/// Which fetch/decode engine drives the simulation.
///
/// Both engines produce bit-identical [`RunResult`]s (outcome, stats and
/// output); they differ only in wall-clock speed. The reference engine is
/// kept for differential testing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineKind {
    /// Decrypt at I-cache fill, execute from the decoded-line store.
    #[default]
    Predecoded,
    /// Re-read memory, re-transform and re-decode on every fetch — the
    /// original interpreter, the semantic baseline.
    Reference,
}

impl std::str::FromStr for EngineKind {
    type Err = String;

    fn from_str(s: &str) -> Result<EngineKind, String> {
        match s {
            "predecoded" => Ok(EngineKind::Predecoded),
            "reference" => Ok(EngineKind::Reference),
            other => Err(format!(
                "unknown engine '{other}' (expected 'predecoded' or 'reference')"
            )),
        }
    }
}

/// Simulator parameters: cache geometries, latencies and limits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimConfig {
    /// Instruction cache geometry.
    pub icache: CacheConfig,
    /// Data cache geometry.
    pub dcache: CacheConfig,
    /// Cycles for the first word of a memory access (miss latency).
    pub mem_latency: u64,
    /// Cycles per additional word of a burst fill.
    pub burst_word_cycles: u64,
    /// Extra cycles for `mul`.
    pub mul_extra: u64,
    /// Extra cycles for `div`/`rem`.
    pub div_extra: u64,
    /// Instruction budget; exceeding it yields [`Outcome::OutOfFuel`].
    pub max_instructions: u64,
    /// Record per-pc execution counts and per-line miss counts.
    pub profile: bool,
    /// Fetch/decode engine selection (timing-neutral).
    pub engine: EngineKind,
}

impl Default for SimConfig {
    fn default() -> SimConfig {
        SimConfig {
            icache: CacheConfig::default_icache(),
            dcache: CacheConfig::default_dcache(),
            mem_latency: 20,
            burst_word_cycles: 2,
            mul_extra: 3,
            div_extra: 15,
            max_instructions: 200_000_000,
            profile: false,
            engine: EngineKind::default(),
        }
    }
}

impl SimConfig {
    /// Returns a copy with profiling enabled.
    pub fn with_profile(mut self) -> SimConfig {
        self.profile = true;
        self
    }

    /// Returns a copy driven by the given engine.
    pub fn with_engine(mut self, engine: EngineKind) -> SimConfig {
        self.engine = engine;
        self
    }
}

/// How a simulation ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// The program called the exit syscall with this code.
    Exit(i32),
    /// The secure monitor raised a tamper event.
    TamperDetected(TamperEvent),
    /// Execution faulted.
    Fault(Fault),
    /// The instruction budget was exhausted.
    OutOfFuel,
}

impl Outcome {
    /// True for a clean `Exit(0)`.
    pub fn is_success(&self) -> bool {
        matches!(self, Outcome::Exit(0))
    }
}

/// Everything a finished simulation produced.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// How execution ended.
    pub outcome: Outcome,
    /// Performance counters.
    pub stats: Stats,
    /// Captured console output.
    pub output: String,
}

/// A complete simulated system: CPU, caches, memory and a fetch monitor.
///
/// The monitor type parameter defaults to [`NullMonitor`] (no protection
/// hardware). The secure monitor from `flexprot-secmon` implements
/// [`FetchMonitor`] and slots in here.
#[derive(Debug, Clone)]
pub struct Machine<M: FetchMonitor = NullMonitor> {
    pub(crate) regs: [u32; 32],
    pub(crate) pc: u32,
    pub(crate) prev_pc: Option<u32>,
    pub(crate) mem: Memory,
    pub(crate) icache: Cache,
    pub(crate) dcache: Cache,
    pub(crate) decode: DecodeCache,
    pub(crate) stats: Stats,
    pub(crate) output: String,
    pub(crate) config: SimConfig,
    pub(crate) monitor: M,
    pub(crate) text_base: u32,
    pub(crate) text_end: u32,
    pub(crate) sink: Option<SharedSink>,
}

impl Machine<NullMonitor> {
    /// Builds an unprotected machine loaded with `image`.
    ///
    /// # Panics
    ///
    /// Panics if a cache geometry in `config` is invalid.
    pub fn new(image: &Image, config: SimConfig) -> Machine<NullMonitor> {
        Machine::with_monitor(image, config, NullMonitor)
    }
}

impl<M: FetchMonitor> Machine<M> {
    /// Builds a machine with the given fetch-path monitor attached.
    ///
    /// # Panics
    ///
    /// Panics if a cache geometry in `config` is invalid.
    pub fn with_monitor(image: &Image, config: SimConfig, monitor: M) -> Machine<M> {
        let mut regs = [0u32; 32];
        regs[Reg::SP.index() as usize] = STACK_TOP;
        regs[Reg::FP.index() as usize] = STACK_TOP;
        let icache = Cache::new(config.icache);
        let decode = DecodeCache::new(
            config.icache.sets(),
            config.icache.ways,
            config.icache.line_bytes,
        );
        Machine {
            regs,
            pc: image.entry,
            prev_pc: None,
            mem: Memory::load(image),
            icache,
            dcache: Cache::new(config.dcache),
            decode,
            stats: Stats::default(),
            output: String::new(),
            config,
            monitor,
            text_base: image.text_base,
            text_end: image.text_end(),
            sink: None,
        }
    }

    /// Attaches an observability sink; every fetch, cache fill, data
    /// access and commit is reported to it, plus a final
    /// [`TraceEvent::RunEnd`] carrying the authoritative [`Stats`]
    /// counters. With no sink attached (the default) the hot path pays
    /// one branch and timing is unchanged.
    pub fn attach_sink(&mut self, sink: SharedSink) {
        self.sink = Some(sink);
    }

    /// Read access to the monitor (e.g. to inspect verification counters).
    pub fn monitor(&self) -> &M {
        &self.monitor
    }

    /// Mutable access to the monitor (e.g. to attach an observability sink
    /// after [`Machine::reset_with_monitor`]).
    pub fn monitor_mut(&mut self) -> &mut M {
        &mut self.monitor
    }

    /// Restores the architectural state (registers, pc, memory, caches,
    /// stats, output, sink) to match a freshly constructed machine loaded
    /// with `image`. Shared by [`Machine::reset`] and [`Machine::rearm`],
    /// which differ only in decoded-line handling.
    fn restore(&mut self, image: &Image) {
        self.regs = [0; 32];
        self.regs[Reg::SP.index() as usize] = STACK_TOP;
        self.regs[Reg::FP.index() as usize] = STACK_TOP;
        self.pc = image.entry;
        self.prev_pc = None;
        self.mem.reset(image);
        self.icache.reset();
        self.dcache.reset();
        self.stats = Stats::default();
        self.output.clear();
        self.text_base = image.text_base;
        self.text_end = image.text_end();
        self.sink = None;
    }

    /// Re-arms the machine to run `image` from scratch, reusing the cache
    /// and memory allocations of the previous run instead of reallocating.
    ///
    /// Registers, pc, caches, stats, captured output and the observability
    /// sink are all restored to their just-constructed state, so a reset
    /// machine produces byte-identical results to a fresh
    /// [`Machine::with_monitor`] under the same config. The monitor is left
    /// untouched — stateless monitors (e.g. [`NullMonitor`]) can be reused
    /// directly; monitors with per-run state must be re-provisioned via
    /// [`Machine::reset_with_monitor`].
    pub fn reset(&mut self, image: &Image) {
        self.restore(image);
        self.decode.clear();
    }

    /// [`Machine::reset`] plus a fresh monitor, for monitors that carry
    /// per-run state (the secure monitor's guard windows and tamper log).
    pub fn reset_with_monitor(&mut self, image: &Image, monitor: M) {
        self.monitor = monitor;
        self.reset(image);
    }

    /// [`Machine::reset_with_monitor`] that additionally *retains* the
    /// decoded-line store across the reset: each retained line is
    /// revalidated against raw memory at its next I-cache fill, so
    /// re-running an image that differs in only a few lines (the attack
    /// harness's tamper trials) re-decrypts and re-decodes only those
    /// lines.
    ///
    /// Sound only when the new monitor's `transform_fetch` is the same
    /// function as the previous one's — identical raw bytes must decrypt
    /// identically. Callers that change the transform (re-keying, different
    /// encryption regions) must use [`Machine::reset_with_monitor`]
    /// instead. Results are still byte-identical to a fresh machine: the
    /// I-cache itself is fully reset, so miss patterns and timing do not
    /// change.
    pub fn rearm(&mut self, image: &Image, monitor: M) {
        self.monitor = monitor;
        self.restore(image);
    }

    /// Runs until exit, fault, tamper detection or fuel exhaustion.
    pub fn run(&mut self) -> RunResult {
        let outcome = self.run_inner();
        if matches!(outcome, Outcome::TamperDetected(_)) {
            // Tamper response: drop decoded plaintext so a re-keyed or
            // re-provisioned monitor never executes stale decodes.
            self.decode.clear();
        }
        if let Some(sink) = &self.sink {
            sink.emit(&TraceEvent::RunEnd {
                cycles: self.stats.cycles,
                instructions: self.stats.instructions,
                icache_misses: self.stats.icache_misses,
                dcache_misses: self.stats.dcache_misses,
                monitor_fill_cycles: self.stats.monitor_fill_cycles,
            });
        }
        RunResult {
            outcome,
            stats: self.stats.clone(),
            output: self.output.clone(),
        }
    }

    fn run_inner(&mut self) -> Outcome {
        loop {
            if self.stats.instructions >= self.config.max_instructions {
                return Outcome::OutOfFuel;
            }
            let pc = self.pc;
            if !pc.is_multiple_of(4) || pc < self.text_base || pc >= self.text_end {
                return Outcome::Fault(Fault::WildPc { pc });
            }

            // --- fetch + decode (crate::fetch) ---
            let (inst, word) = match self.fetch_decode(pc) {
                Ok(fetched) => fetched,
                Err(outcome) => return outcome,
            };

            // --- commit observation (guard verification) ---
            let sequential = self.prev_pc == Some(pc.wrapping_sub(4));
            if let Some(event) = self.monitor.observe_commit(pc, word, sequential) {
                return Outcome::TamperDetected(event);
            }
            self.stats.instructions += 1;
            if let Some(sink) = &self.sink {
                sink.emit(&TraceEvent::Commit { pc });
            }
            if self.config.profile {
                *self.stats.exec_counts.entry(pc).or_insert(0) += 1;
            }
            self.prev_pc = Some(pc);

            // --- execute (crate::exec) ---
            match self.execute(pc, inst) {
                Step::Next => self.pc = pc.wrapping_add(4),
                Step::Goto(target) => {
                    self.stats.taken_transfers += 1;
                    self.pc = target;
                }
                Step::Stop(outcome) => return outcome,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheConfig;

    fn run(src: &str) -> RunResult {
        let image = flexprot_asm::assemble_or_panic(src);
        Machine::new(&image, SimConfig::default()).run()
    }

    #[test]
    fn arithmetic_and_print() {
        let r = run(r#"
main:   li  $t0, 21
        li  $t1, 2
        mul $a0, $t0, $t1
        li  $v0, 1
        syscall
        li  $v0, 10
        syscall
"#);
        assert_eq!(r.outcome, Outcome::Exit(0));
        assert_eq!(r.output, "42");
    }

    #[test]
    fn reset_run_is_byte_identical_to_fresh_run() {
        let sum = flexprot_asm::assemble_or_panic(
            r#"
main:   li   $t0, 0
        li   $t1, 50
loop:   addu $t0, $t0, $t1
        addi $t1, $t1, -1
        bgtz $t1, loop
        addi $sp, $sp, -4
        sw   $t0, 0($sp)
        lw   $a0, 0($sp)
        li   $v0, 1
        syscall
        li   $v0, 10
        syscall
"#,
        );
        let other = flexprot_asm::assemble_or_panic(
            "main: li $a0, 7\n li $v0, 1\n syscall\n li $v0, 10\n syscall\n",
        );
        let fresh_sum = Machine::new(&sum, SimConfig::default()).run();
        let fresh_other = Machine::new(&other, SimConfig::default()).run();
        // One machine, reset across images: results (stats included) must
        // match fresh machines exactly.
        let mut machine = Machine::new(&other, SimConfig::default());
        machine.run();
        machine.reset(&sum);
        assert_eq!(machine.run(), fresh_sum);
        machine.reset(&other);
        assert_eq!(machine.run(), fresh_other);
    }

    #[test]
    fn rearm_run_is_byte_identical_to_fresh_run() {
        // Rearm retains decoded lines; with an identity transform it must
        // still match a fresh machine exactly, whether the image changed
        // (content revalidation re-decodes mutated lines) or not.
        let a = flexprot_asm::assemble_or_panic(
            "main: li $a0, 7\n li $v0, 1\n syscall\n li $v0, 10\n syscall\n",
        );
        let b = flexprot_asm::assemble_or_panic(
            "main: li $a0, 9\n li $v0, 1\n syscall\n li $v0, 10\n syscall\n",
        );
        let fresh_a = Machine::new(&a, SimConfig::default()).run();
        let fresh_b = Machine::new(&b, SimConfig::default()).run();
        let mut machine = Machine::new(&a, SimConfig::default());
        machine.run();
        machine.rearm(&b, NullMonitor);
        assert_eq!(machine.run(), fresh_b);
        machine.rearm(&a, NullMonitor);
        assert_eq!(machine.run(), fresh_a);
        // Rearm onto the same unchanged image: pure revalidation path.
        machine.rearm(&a, NullMonitor);
        assert_eq!(machine.run(), fresh_a);
    }

    #[test]
    fn engines_agree_including_stats() {
        let programs = [
            "main: li $a0, 7\n li $v0, 1\n syscall\n li $v0, 10\n syscall\n",
            r#"
main:   li   $t0, 0
        li   $t1, 200
loop:   addu $t0, $t0, $t1
        addi $t1, $t1, -1
        bgtz $t1, loop
        move $a0, $t0
        li   $v0, 1
        syscall
        li   $v0, 10
        syscall
"#,
            // Faulting program: illegal-fault parity (word reported too).
            "main: li $t0, 0x10010001\n lw $t1, 0($t0)\n",
        ];
        for src in programs {
            let image = flexprot_asm::assemble_or_panic(src);
            let reference = Machine::new(
                &image,
                SimConfig::default().with_engine(EngineKind::Reference),
            )
            .run();
            let predecoded = Machine::new(
                &image,
                SimConfig::default().with_engine(EngineKind::Predecoded),
            )
            .run();
            assert_eq!(predecoded, reference);
        }
    }

    #[test]
    fn store_to_text_invalidates_decoded_line() {
        // The program copies the instruction at `src` over the one at
        // `dst` before executing it; both engines must see the patched
        // instruction ("222"), not the stale decode ("111").
        let src = r#"
main:   la   $t0, patch
        la   $t1, dst
        lw   $t2, 0($t0)
        sw   $t2, 0($t1)
dst:    li   $a0, 111
        li   $v0, 1
        syscall
        li   $v0, 10
        syscall
patch:  li   $a0, 222
"#;
        let image = flexprot_asm::assemble_or_panic(src);
        for engine in [EngineKind::Reference, EngineKind::Predecoded] {
            let r = Machine::new(&image, SimConfig::default().with_engine(engine)).run();
            assert_eq!(r.outcome, Outcome::Exit(0), "{engine:?}");
            assert_eq!(r.output, "222", "{engine:?}");
        }
    }

    #[test]
    fn engine_kind_parses_from_str() {
        assert_eq!("predecoded".parse(), Ok(EngineKind::Predecoded));
        assert_eq!("reference".parse(), Ok(EngineKind::Reference));
        assert!("fast".parse::<EngineKind>().is_err());
        assert_eq!(EngineKind::default(), EngineKind::Predecoded);
    }

    #[test]
    fn exit_code_propagates() {
        let r = run("main: li $a0, 3\n li $v0, 17\n syscall\n");
        assert_eq!(r.outcome, Outcome::Exit(3));
        assert!(!r.outcome.is_success());
    }

    #[test]
    fn loop_sums_to_n() {
        let r = run(r#"
main:   li   $t0, 0          # sum
        li   $t1, 1          # i
        li   $t2, 100        # n
loop:   bgt  $t1, $t2, done
        addu $t0, $t0, $t1
        addi $t1, $t1, 1
        b    loop
done:   move $a0, $t0
        li   $v0, 1
        syscall
        li   $v0, 10
        syscall
"#);
        assert_eq!(r.outcome, Outcome::Exit(0));
        assert_eq!(r.output, "5050");
    }

    #[test]
    fn memory_and_stack() {
        let r = run(r#"
        .data
arr:    .word 5, 6, 7
        .text
main:   la   $t0, arr
        lw   $t1, 4($t0)      # 6
        addi $sp, $sp, -4
        sw   $t1, 0($sp)
        lw   $a0, 0($sp)
        addi $sp, $sp, 4
        li   $v0, 1
        syscall
        li   $v0, 10
        syscall
"#);
        assert_eq!(r.output, "6");
    }

    #[test]
    fn function_call_and_return() {
        let r = run(r#"
main:   li   $a0, 5
        jal  double
        move $a0, $v0
        li   $v0, 1
        syscall
        li   $v0, 10
        syscall
double: addu $v0, $a0, $a0
        jr   $ra
"#);
        assert_eq!(r.output, "10");
    }

    #[test]
    fn recursion_factorial() {
        let r = run(r#"
main:   li   $a0, 6
        jal  fact
        move $a0, $v0
        li   $v0, 1
        syscall
        li   $v0, 10
        syscall
fact:   addi $sp, $sp, -8
        sw   $ra, 4($sp)
        sw   $a0, 0($sp)
        li   $v0, 1
        blez $a0, fact_done
        addi $a0, $a0, -1
        jal  fact
        lw   $a0, 0($sp)
        mul  $v0, $v0, $a0
fact_done:
        lw   $ra, 4($sp)
        addi $sp, $sp, 8
        jr   $ra
"#);
        assert_eq!(r.output, "720");
    }

    #[test]
    fn print_services() {
        let r = run(r#"
        .data
msg:    .asciiz "x="
        .text
main:   la  $a0, msg
        li  $v0, 4
        syscall
        li  $a0, -7
        li  $v0, 1
        syscall
        li  $a0, '\n'
        li  $v0, 11
        syscall
        li  $a0, 0xFF
        li  $v0, 34
        syscall
        li  $v0, 10
        syscall
"#);
        assert_eq!(r.output, "x=-7\n000000ff");
    }

    #[test]
    fn signed_ops() {
        let r = run(r#"
main:   li   $t0, -8
        li   $t1, 3
        div  $t2, $t0, $t1    # -2
        rem  $t3, $t0, $t1    # -2
        addu $a0, $t2, $t3    # -4
        li   $v0, 1
        syscall
        li   $v0, 10
        syscall
"#);
        assert_eq!(r.output, "-4");
    }

    #[test]
    fn division_by_zero_yields_zero() {
        let r = run(r#"
main:   li  $t0, 9
        div $a0, $t0, $zero
        li  $v0, 1
        syscall
        li  $v0, 10
        syscall
"#);
        assert_eq!(r.output, "0");
    }

    #[test]
    fn zero_register_ignores_writes() {
        let r = run(r#"
main:   li   $t0, 5
        addu $zero, $t0, $t0
        move $a0, $zero
        li   $v0, 1
        syscall
        li   $v0, 10
        syscall
"#);
        assert_eq!(r.output, "0");
    }

    #[test]
    fn illegal_instruction_faults() {
        // `jr $ra` with ra=0 leaves text -> WildPc.
        let r = run("main: jr $ra\n");
        assert!(matches!(r.outcome, Outcome::Fault(Fault::WildPc { .. })));
    }

    #[test]
    fn break_faults() {
        let r = run("main: break\n");
        assert!(matches!(r.outcome, Outcome::Fault(Fault::Break { .. })));
    }

    #[test]
    fn unaligned_word_access_faults() {
        let r = run("main: li $t0, 0x10010001\n lw $t1, 0($t0)\n");
        assert!(matches!(r.outcome, Outcome::Fault(Fault::Unaligned { .. })));
    }

    #[test]
    fn bad_syscall_faults() {
        let r = run("main: li $v0, 99\n syscall\n");
        assert!(matches!(
            r.outcome,
            Outcome::Fault(Fault::BadSyscall { service: 99, .. })
        ));
    }

    #[test]
    fn fuel_limit_stops_infinite_loop() {
        let image = flexprot_asm::assemble_or_panic("main: b main\n");
        let config = SimConfig {
            max_instructions: 1000,
            ..SimConfig::default()
        };
        let r = Machine::new(&image, config).run();
        assert_eq!(r.outcome, Outcome::OutOfFuel);
        assert_eq!(r.stats.instructions, 1000);
    }

    #[test]
    fn stats_count_instructions_and_caches() {
        let r = run("main: li $v0, 10\n li $a0, 0\n syscall\n");
        assert_eq!(r.stats.instructions, 3);
        assert_eq!(r.stats.icache_accesses, 3);
        // All three words share one line: exactly one cold miss.
        assert_eq!(r.stats.icache_misses, 1);
        assert!(r.stats.cycles > 3);
    }

    #[test]
    fn profiling_collects_exec_counts() {
        let image = flexprot_asm::assemble_or_panic(
            r#"
main:   li   $t0, 3
loop:   addi $t0, $t0, -1
        bgtz $t0, loop
        li   $v0, 10
        li   $a0, 0
        syscall
"#,
        );
        let r = Machine::new(&image, SimConfig::default().with_profile()).run();
        assert_eq!(r.outcome, Outcome::Exit(0));
        let loop_pc = image.symbol("loop").unwrap();
        assert_eq!(r.stats.exec_counts.get(&loop_pc), Some(&3));
        assert_eq!(r.stats.exec_counts.get(&image.entry), Some(&1));
        assert!(!r.stats.imiss_counts.is_empty());
    }

    #[test]
    fn monitor_transform_and_penalty_are_applied() {
        #[derive(Debug)]
        struct XorMonitor {
            key: u32,
            fills: u32,
        }
        impl FetchMonitor for XorMonitor {
            fn transform_fetch(&mut self, _addr: u32, word: u32) -> u32 {
                word ^ self.key
            }
            fn fill_penalty(&mut self, _line_addr: u32, _line_words: u32) -> u64 {
                self.fills += 1;
                7
            }
        }

        let mut image = flexprot_asm::assemble_or_panic(
            "main: li $a0, 9\n li $v0, 1\n syscall\n li $v0, 10\n li $a0, 0\n syscall\n",
        );
        let key = 0x5A5A_5A5A;
        for word in &mut image.text {
            *word ^= key;
        }
        let monitor = XorMonitor { key, fills: 0 };
        let mut machine = Machine::with_monitor(&image, SimConfig::default(), monitor);
        let r = machine.run();
        assert_eq!(r.outcome, Outcome::Exit(0));
        assert_eq!(r.output, "9");
        assert_eq!(machine.monitor().fills, 1);
        assert_eq!(r.stats.monitor_fill_cycles, 7);
    }

    #[test]
    fn monitor_tamper_event_aborts() {
        #[derive(Debug)]
        struct TripAtThird(u32);
        impl FetchMonitor for TripAtThird {
            fn observe_commit(&mut self, pc: u32, _w: u32, _seq: bool) -> Option<TamperEvent> {
                self.0 += 1;
                (self.0 == 3).then(|| TamperEvent {
                    pc,
                    reason: "test trip".to_owned(),
                })
            }
        }
        let image =
            flexprot_asm::assemble_or_panic("main: nop\n nop\n nop\n nop\n li $v0, 10\n syscall\n");
        let r = Machine::with_monitor(&image, SimConfig::default(), TripAtThird(0)).run();
        match r.outcome {
            Outcome::TamperDetected(event) => {
                assert_eq!(event.pc, image.entry + 8);
                // Two instructions committed before the third was blocked.
                assert_eq!(r.stats.instructions, 2);
            }
            other => panic!("expected tamper, got {other:?}"),
        }
    }

    #[test]
    fn sequential_flag_tracks_control_flow() {
        #[derive(Debug, Default)]
        struct SeqLog(Vec<bool>);
        impl FetchMonitor for SeqLog {
            fn observe_commit(&mut self, _pc: u32, _w: u32, seq: bool) -> Option<TamperEvent> {
                self.0.push(seq);
                None
            }
        }
        let image = flexprot_asm::assemble_or_panic(
            r#"
main:   b   skip
        nop
skip:   nop
        li  $v0, 10
        li  $a0, 0
        syscall
"#,
        );
        let mut machine = Machine::with_monitor(&image, SimConfig::default(), SeqLog::default());
        let r = machine.run();
        assert_eq!(r.outcome, Outcome::Exit(0));
        // entry: not sequential; skip: reached by taken branch -> not
        // sequential; the rest sequential.
        assert_eq!(machine.monitor().0, vec![false, false, true, true, true]);
    }

    #[test]
    fn attached_sink_reconciles_with_stats() {
        let image = flexprot_asm::assemble_or_panic(
            r#"
        .data
arr:    .word 1, 2, 3, 4
        .text
main:   li   $t0, 4
        la   $t1, arr
        li   $a0, 0
loop:   lw   $t2, 0($t1)
        addu $a0, $a0, $t2
        addi $t1, $t1, 4
        addi $t0, $t0, -1
        bgtz $t0, loop
        sw   $a0, 0($t1)
        li   $v0, 1
        syscall
        li   $v0, 10
        li   $a0, 0
        syscall
"#,
        );
        let baseline = Machine::new(&image, SimConfig::default()).run();

        let (sink, recorder) = flexprot_trace::Recorder::new().shared();
        let mut machine = Machine::new(&image, SimConfig::default());
        machine.attach_sink(sink);
        let traced = machine.run();

        // Attaching a sink must not perturb timing or behaviour.
        assert_eq!(traced.outcome, baseline.outcome);
        assert_eq!(traced.output, baseline.output);
        assert_eq!(traced.stats, baseline.stats);

        // Event-derived counters agree exactly with the Stats counters.
        let recorder = recorder.borrow();
        let m = recorder.metrics();
        assert_eq!(m.counter("icache_accesses"), traced.stats.icache_accesses);
        assert_eq!(m.counter("icache_misses"), traced.stats.icache_misses);
        assert_eq!(m.counter("dcache_accesses"), traced.stats.dcache_accesses);
        assert_eq!(m.counter("dcache_misses"), traced.stats.dcache_misses);
        assert_eq!(
            m.counter("dcache_writebacks"),
            traced.stats.dcache_writebacks
        );
        assert_eq!(
            m.counter("instructions_committed"),
            traced.stats.instructions
        );
        assert_eq!(m.counter("sim_cycles"), traced.stats.cycles);
        assert_eq!(m.counter("sim_instructions"), traced.stats.instructions);
        assert_eq!(m.counter("sim_icache_misses"), traced.stats.icache_misses);
        let fills = m.histogram("icache_fill_cycles").unwrap();
        assert_eq!(fills.count(), traced.stats.icache_misses);
    }

    #[test]
    fn larger_icache_reduces_misses() {
        let src = r#"
main:   li   $t0, 200
loop:   jal  far
        addi $t0, $t0, -1
        bgtz $t0, loop
        li   $v0, 10
        li   $a0, 0
        syscall
far:    jr   $ra
"#;
        let image = flexprot_asm::assemble_or_panic(src);
        let small = SimConfig {
            icache: CacheConfig {
                size_bytes: 64,
                line_bytes: 16,
                ways: 1,
            },
            ..SimConfig::default()
        };
        let big = SimConfig::default();
        let r_small = Machine::new(&image, small).run();
        let r_big = Machine::new(&image, big).run();
        assert_eq!(r_small.outcome, Outcome::Exit(0));
        assert!(r_small.stats.icache_misses >= r_big.stats.icache_misses);
        assert!(r_small.stats.cycles >= r_big.stats.cycles);
    }
}
