//! Differential testing of the CPU executor: random straight-line ALU
//! programs run on the full [`Machine`] (through encode → memory → fetch →
//! decode → execute) must agree with an independent register-file
//! interpreter evaluating the same instruction list directly. Driven by
//! the in-repo deterministic PRNG.

use flexprot_isa::{Image, Inst, Reg, Rng64};
use flexprot_sim::{Machine, Outcome, SimConfig};

/// Registers the random programs operate on ($t0..$t7, $s0..$s7).
fn work_reg(rng: &mut Rng64) -> Reg {
    Reg::from_index(8 + rng.below(16) as u8).expect("in range")
}

fn arb_alu_inst(rng: &mut Rng64) -> Inst {
    let r = work_reg;
    match rng.below(24) {
        0 => Inst::Addu {
            rd: r(rng),
            rs: r(rng),
            rt: r(rng),
        },
        1 => Inst::Subu {
            rd: r(rng),
            rs: r(rng),
            rt: r(rng),
        },
        2 => Inst::Mul {
            rd: r(rng),
            rs: r(rng),
            rt: r(rng),
        },
        3 => Inst::Div {
            rd: r(rng),
            rs: r(rng),
            rt: r(rng),
        },
        4 => Inst::Rem {
            rd: r(rng),
            rs: r(rng),
            rt: r(rng),
        },
        5 => Inst::And {
            rd: r(rng),
            rs: r(rng),
            rt: r(rng),
        },
        6 => Inst::Or {
            rd: r(rng),
            rs: r(rng),
            rt: r(rng),
        },
        7 => Inst::Xor {
            rd: r(rng),
            rs: r(rng),
            rt: r(rng),
        },
        8 => Inst::Nor {
            rd: r(rng),
            rs: r(rng),
            rt: r(rng),
        },
        9 => Inst::Slt {
            rd: r(rng),
            rs: r(rng),
            rt: r(rng),
        },
        10 => Inst::Sltu {
            rd: r(rng),
            rs: r(rng),
            rt: r(rng),
        },
        11 => Inst::Sll {
            rd: r(rng),
            rt: r(rng),
            sh: rng.below(32) as u8,
        },
        12 => Inst::Srl {
            rd: r(rng),
            rt: r(rng),
            sh: rng.below(32) as u8,
        },
        13 => Inst::Sra {
            rd: r(rng),
            rt: r(rng),
            sh: rng.below(32) as u8,
        },
        14 => Inst::Sllv {
            rd: r(rng),
            rt: r(rng),
            rs: r(rng),
        },
        15 => Inst::Srlv {
            rd: r(rng),
            rt: r(rng),
            rs: r(rng),
        },
        16 => Inst::Srav {
            rd: r(rng),
            rt: r(rng),
            rs: r(rng),
        },
        17 => Inst::Addi {
            rt: r(rng),
            rs: r(rng),
            imm: rng.next_i16(),
        },
        18 => Inst::Slti {
            rt: r(rng),
            rs: r(rng),
            imm: rng.next_i16(),
        },
        19 => Inst::Sltiu {
            rt: r(rng),
            rs: r(rng),
            imm: rng.next_i16(),
        },
        20 => Inst::Andi {
            rt: r(rng),
            rs: r(rng),
            imm: rng.next_u32() as u16,
        },
        21 => Inst::Ori {
            rt: r(rng),
            rs: r(rng),
            imm: rng.next_u32() as u16,
        },
        22 => Inst::Xori {
            rt: r(rng),
            rs: r(rng),
            imm: rng.next_u32() as u16,
        },
        _ => Inst::Lui {
            rt: r(rng),
            imm: rng.next_u32() as u16,
        },
    }
}

/// Reference interpreter: must mirror `flexprot_sim::cpu` ALU semantics.
fn interpret(regs: &mut [u32; 32], inst: Inst) {
    use Inst::*;
    let get = |regs: &[u32; 32], r: Reg| regs[r.index() as usize];
    let set = |regs: &mut [u32; 32], r: Reg, v: u32| {
        if r != Reg::ZERO {
            regs[r.index() as usize] = v;
        }
    };
    match inst {
        Addu { rd, rs, rt } => set(regs, rd, get(regs, rs).wrapping_add(get(regs, rt))),
        Subu { rd, rs, rt } => set(regs, rd, get(regs, rs).wrapping_sub(get(regs, rt))),
        Mul { rd, rs, rt } => set(regs, rd, get(regs, rs).wrapping_mul(get(regs, rt))),
        Div { rd, rs, rt } => {
            let (a, b) = (get(regs, rs) as i32, get(regs, rt) as i32);
            set(regs, rd, if b == 0 { 0 } else { a.wrapping_div(b) as u32 });
        }
        Rem { rd, rs, rt } => {
            let (a, b) = (get(regs, rs) as i32, get(regs, rt) as i32);
            set(regs, rd, if b == 0 { 0 } else { a.wrapping_rem(b) as u32 });
        }
        And { rd, rs, rt } => set(regs, rd, get(regs, rs) & get(regs, rt)),
        Or { rd, rs, rt } => set(regs, rd, get(regs, rs) | get(regs, rt)),
        Xor { rd, rs, rt } => set(regs, rd, get(regs, rs) ^ get(regs, rt)),
        Nor { rd, rs, rt } => set(regs, rd, !(get(regs, rs) | get(regs, rt))),
        Slt { rd, rs, rt } => set(
            regs,
            rd,
            u32::from((get(regs, rs) as i32) < (get(regs, rt) as i32)),
        ),
        Sltu { rd, rs, rt } => set(regs, rd, u32::from(get(regs, rs) < get(regs, rt))),
        Sll { rd, rt, sh } => set(regs, rd, get(regs, rt) << sh),
        Srl { rd, rt, sh } => set(regs, rd, get(regs, rt) >> sh),
        Sra { rd, rt, sh } => set(regs, rd, ((get(regs, rt) as i32) >> sh) as u32),
        Sllv { rd, rt, rs } => set(regs, rd, get(regs, rt) << (get(regs, rs) & 31)),
        Srlv { rd, rt, rs } => set(regs, rd, get(regs, rt) >> (get(regs, rs) & 31)),
        Srav { rd, rt, rs } => set(
            regs,
            rd,
            ((get(regs, rt) as i32) >> (get(regs, rs) & 31)) as u32,
        ),
        Addi { rt, rs, imm } => set(regs, rt, get(regs, rs).wrapping_add(imm as i32 as u32)),
        Slti { rt, rs, imm } => set(regs, rt, u32::from((get(regs, rs) as i32) < i32::from(imm))),
        Sltiu { rt, rs, imm } => set(regs, rt, u32::from(get(regs, rs) < (imm as i32 as u32))),
        Andi { rt, rs, imm } => set(regs, rt, get(regs, rs) & u32::from(imm)),
        Ori { rt, rs, imm } => set(regs, rt, get(regs, rs) | u32::from(imm)),
        Xori { rt, rs, imm } => set(regs, rt, get(regs, rs) ^ u32::from(imm)),
        Lui { rt, imm } => set(regs, rt, u32::from(imm) << 16),
        _ => unreachable!("generator only produces ALU instructions"),
    }
}

/// Builds the program: seed the 16 work registers, run `ops`, then print
/// the xor-fold of all work registers in hex and exit.
fn build_program(seeds: &[u16; 16], ops: &[Inst]) -> Vec<Inst> {
    let mut program = Vec::new();
    for (k, &seed) in seeds.iter().enumerate() {
        program.push(Inst::Ori {
            rt: Reg::from_index(8 + k as u8).expect("work reg"),
            rs: Reg::ZERO,
            imm: seed,
        });
        // Spread seeds into the high half too.
        program.push(Inst::Sll {
            rd: Reg::from_index(8 + k as u8).expect("work reg"),
            rt: Reg::from_index(8 + k as u8).expect("work reg"),
            sh: (k % 17) as u8,
        });
    }
    program.extend_from_slice(ops);
    // a0 = xor of r8..r23
    program.push(Inst::Addu {
        rd: Reg::A0,
        rs: Reg::ZERO,
        rt: Reg::ZERO,
    });
    for k in 0..16u8 {
        program.push(Inst::Xor {
            rd: Reg::A0,
            rs: Reg::A0,
            rt: Reg::from_index(8 + k).expect("work reg"),
        });
    }
    program.push(Inst::Addi {
        rt: Reg::V0,
        rs: Reg::ZERO,
        imm: 34,
    });
    program.push(Inst::Syscall);
    program.push(Inst::Addi {
        rt: Reg::V0,
        rs: Reg::ZERO,
        imm: 10,
    });
    program.push(Inst::Syscall);
    program
}

fn seeds_and_ops(rng: &mut Rng64, max_ops: u64) -> ([u16; 16], Vec<Inst>) {
    let mut seeds = [0u16; 16];
    for s in &mut seeds {
        *s = rng.next_u32() as u16;
    }
    let count = rng.below(max_ops) as usize;
    let ops = (0..count).map(|_| arb_alu_inst(rng)).collect();
    (seeds, ops)
}

/// The machine and the reference interpreter agree on the final
/// register state of arbitrary ALU programs.
#[test]
fn machine_matches_reference_interpreter() {
    let mut rng = Rng64::new(0xD1FF_0001);
    for _ in 0..128 {
        let (seeds, ops) = seeds_and_ops(&mut rng, 200);
        let program = build_program(&seeds, &ops);
        // Reference execution of everything before the print epilogue.
        let mut regs = [0u32; 32];
        let body_len = program.len() - 21; // print epilogue is 21 instructions
        for &inst in &program[..body_len] {
            interpret(&mut regs, inst);
        }
        let mut expected = 0u32;
        for k in 0..16 {
            expected ^= regs[8 + k];
        }

        let image = Image::from_text(program.iter().map(|i| i.encode()).collect());
        let result = Machine::new(&image, SimConfig::default()).run();
        assert_eq!(result.outcome, Outcome::Exit(0));
        assert_eq!(result.output, format!("{expected:08x}"));
        assert_eq!(result.stats.instructions, program.len() as u64);
    }
}

/// The same program also agrees when run under full protection —
/// the protection pipeline must never change ALU semantics.
#[test]
fn protected_machine_matches_reference() {
    let mut rng = Rng64::new(0xD1FF_0002);
    for _ in 0..64 {
        let (seeds, ops) = seeds_and_ops(&mut rng, 48);
        let program = build_program(&seeds, &ops);
        let image = Image::from_text(program.iter().map(|i| i.encode()).collect());
        let plain = Machine::new(&image, SimConfig::default()).run();
        assert_eq!(plain.outcome, Outcome::Exit(0));
        // Straight-line programs have no relocations and no branches, so
        // guard insertion applies without an assembler round trip.
        let config = flexprot_core::ProtectionConfig::new()
            .with_guards(flexprot_core::GuardConfig::with_density(1.0))
            .with_encryption(flexprot_core::EncryptConfig::whole_program(0xD1FF));
        let protected = flexprot_core::protect(&image, &config, None).expect("protect");
        let run = protected.run(SimConfig::default());
        assert_eq!(run.outcome, Outcome::Exit(0));
        assert_eq!(run.output, plain.output);
    }
}
