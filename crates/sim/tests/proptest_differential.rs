//! Differential testing of the CPU executor: random straight-line ALU
//! programs run on the full [`Machine`] (through encode → memory → fetch →
//! decode → execute) must agree with an independent register-file
//! interpreter evaluating the same instruction list directly.

use flexprot_isa::{Image, Inst, Reg};
use flexprot_sim::{Machine, Outcome, SimConfig};
use proptest::prelude::*;

/// Registers the random programs operate on ($t0..$t7, $s0..$s7).
fn arb_work_reg() -> impl Strategy<Value = Reg> {
    (8u8..24).prop_map(|i| Reg::from_index(i).expect("in range"))
}

fn arb_alu_inst() -> impl Strategy<Value = Inst> {
    let r = arb_work_reg;
    prop_oneof![
        (r(), r(), r()).prop_map(|(rd, rs, rt)| Inst::Addu { rd, rs, rt }),
        (r(), r(), r()).prop_map(|(rd, rs, rt)| Inst::Subu { rd, rs, rt }),
        (r(), r(), r()).prop_map(|(rd, rs, rt)| Inst::Mul { rd, rs, rt }),
        (r(), r(), r()).prop_map(|(rd, rs, rt)| Inst::Div { rd, rs, rt }),
        (r(), r(), r()).prop_map(|(rd, rs, rt)| Inst::Rem { rd, rs, rt }),
        (r(), r(), r()).prop_map(|(rd, rs, rt)| Inst::And { rd, rs, rt }),
        (r(), r(), r()).prop_map(|(rd, rs, rt)| Inst::Or { rd, rs, rt }),
        (r(), r(), r()).prop_map(|(rd, rs, rt)| Inst::Xor { rd, rs, rt }),
        (r(), r(), r()).prop_map(|(rd, rs, rt)| Inst::Nor { rd, rs, rt }),
        (r(), r(), r()).prop_map(|(rd, rs, rt)| Inst::Slt { rd, rs, rt }),
        (r(), r(), r()).prop_map(|(rd, rs, rt)| Inst::Sltu { rd, rs, rt }),
        (r(), r(), 0u8..32).prop_map(|(rd, rt, sh)| Inst::Sll { rd, rt, sh }),
        (r(), r(), 0u8..32).prop_map(|(rd, rt, sh)| Inst::Srl { rd, rt, sh }),
        (r(), r(), 0u8..32).prop_map(|(rd, rt, sh)| Inst::Sra { rd, rt, sh }),
        (r(), r(), r()).prop_map(|(rd, rt, rs)| Inst::Sllv { rd, rt, rs }),
        (r(), r(), r()).prop_map(|(rd, rt, rs)| Inst::Srlv { rd, rt, rs }),
        (r(), r(), r()).prop_map(|(rd, rt, rs)| Inst::Srav { rd, rt, rs }),
        (r(), r(), any::<i16>()).prop_map(|(rt, rs, imm)| Inst::Addi { rt, rs, imm }),
        (r(), r(), any::<i16>()).prop_map(|(rt, rs, imm)| Inst::Slti { rt, rs, imm }),
        (r(), r(), any::<i16>()).prop_map(|(rt, rs, imm)| Inst::Sltiu { rt, rs, imm }),
        (r(), r(), any::<u16>()).prop_map(|(rt, rs, imm)| Inst::Andi { rt, rs, imm }),
        (r(), r(), any::<u16>()).prop_map(|(rt, rs, imm)| Inst::Ori { rt, rs, imm }),
        (r(), r(), any::<u16>()).prop_map(|(rt, rs, imm)| Inst::Xori { rt, rs, imm }),
        (r(), any::<u16>()).prop_map(|(rt, imm)| Inst::Lui { rt, imm }),
    ]
}

/// Reference interpreter: must mirror `flexprot_sim::cpu` ALU semantics.
fn interpret(regs: &mut [u32; 32], inst: Inst) {
    use Inst::*;
    let get = |regs: &[u32; 32], r: Reg| regs[r.index() as usize];
    let mut set = |regs: &mut [u32; 32], r: Reg, v: u32| {
        if r != Reg::ZERO {
            regs[r.index() as usize] = v;
        }
    };
    match inst {
        Addu { rd, rs, rt } => set(regs, rd, get(regs, rs).wrapping_add(get(regs, rt))),
        Subu { rd, rs, rt } => set(regs, rd, get(regs, rs).wrapping_sub(get(regs, rt))),
        Mul { rd, rs, rt } => set(regs, rd, get(regs, rs).wrapping_mul(get(regs, rt))),
        Div { rd, rs, rt } => {
            let (a, b) = (get(regs, rs) as i32, get(regs, rt) as i32);
            set(regs, rd, if b == 0 { 0 } else { a.wrapping_div(b) as u32 });
        }
        Rem { rd, rs, rt } => {
            let (a, b) = (get(regs, rs) as i32, get(regs, rt) as i32);
            set(regs, rd, if b == 0 { 0 } else { a.wrapping_rem(b) as u32 });
        }
        And { rd, rs, rt } => set(regs, rd, get(regs, rs) & get(regs, rt)),
        Or { rd, rs, rt } => set(regs, rd, get(regs, rs) | get(regs, rt)),
        Xor { rd, rs, rt } => set(regs, rd, get(regs, rs) ^ get(regs, rt)),
        Nor { rd, rs, rt } => set(regs, rd, !(get(regs, rs) | get(regs, rt))),
        Slt { rd, rs, rt } => set(
            regs,
            rd,
            u32::from((get(regs, rs) as i32) < (get(regs, rt) as i32)),
        ),
        Sltu { rd, rs, rt } => set(regs, rd, u32::from(get(regs, rs) < get(regs, rt))),
        Sll { rd, rt, sh } => set(regs, rd, get(regs, rt) << sh),
        Srl { rd, rt, sh } => set(regs, rd, get(regs, rt) >> sh),
        Sra { rd, rt, sh } => set(regs, rd, ((get(regs, rt) as i32) >> sh) as u32),
        Sllv { rd, rt, rs } => set(regs, rd, get(regs, rt) << (get(regs, rs) & 31)),
        Srlv { rd, rt, rs } => set(regs, rd, get(regs, rt) >> (get(regs, rs) & 31)),
        Srav { rd, rt, rs } => set(
            regs,
            rd,
            ((get(regs, rt) as i32) >> (get(regs, rs) & 31)) as u32,
        ),
        Addi { rt, rs, imm } => set(regs, rt, get(regs, rs).wrapping_add(imm as i32 as u32)),
        Slti { rt, rs, imm } => set(regs, rt, u32::from((get(regs, rs) as i32) < i32::from(imm))),
        Sltiu { rt, rs, imm } => set(regs, rt, u32::from(get(regs, rs) < (imm as i32 as u32))),
        Andi { rt, rs, imm } => set(regs, rt, get(regs, rs) & u32::from(imm)),
        Ori { rt, rs, imm } => set(regs, rt, get(regs, rs) | u32::from(imm)),
        Xori { rt, rs, imm } => set(regs, rt, get(regs, rs) ^ u32::from(imm)),
        Lui { rt, imm } => set(regs, rt, u32::from(imm) << 16),
        _ => unreachable!("strategy only generates ALU instructions"),
    }
}

/// Builds the program: seed the 16 work registers, run `ops`, then print
/// the xor-fold of all work registers in hex and exit.
fn build_program(seeds: &[u16; 16], ops: &[Inst]) -> Vec<Inst> {
    let mut program = Vec::new();
    for (k, &seed) in seeds.iter().enumerate() {
        program.push(Inst::Ori {
            rt: Reg::from_index(8 + k as u8).expect("work reg"),
            rs: Reg::ZERO,
            imm: seed,
        });
        // Spread seeds into the high half too.
        program.push(Inst::Sll {
            rd: Reg::from_index(8 + k as u8).expect("work reg"),
            rt: Reg::from_index(8 + k as u8).expect("work reg"),
            sh: (k % 17) as u8,
        });
    }
    program.extend_from_slice(ops);
    // a0 = xor of r8..r23
    program.push(Inst::Addu {
        rd: Reg::A0,
        rs: Reg::ZERO,
        rt: Reg::ZERO,
    });
    for k in 0..16u8 {
        program.push(Inst::Xor {
            rd: Reg::A0,
            rs: Reg::A0,
            rt: Reg::from_index(8 + k).expect("work reg"),
        });
    }
    program.push(Inst::Addi {
        rt: Reg::V0,
        rs: Reg::ZERO,
        imm: 34,
    });
    program.push(Inst::Syscall);
    program.push(Inst::Addi {
        rt: Reg::V0,
        rs: Reg::ZERO,
        imm: 10,
    });
    program.push(Inst::Syscall);
    program
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The machine and the reference interpreter agree on the final
    /// register state of arbitrary ALU programs.
    #[test]
    fn machine_matches_reference_interpreter(
        seeds in prop::array::uniform16(any::<u16>()),
        ops in prop::collection::vec(arb_alu_inst(), 0..200),
    ) {
        let program = build_program(&seeds, &ops);
        // Reference execution of everything before the print epilogue.
        let mut regs = [0u32; 32];
        let body_len = program.len() - 21; // print epilogue is 21 instructions
        for &inst in &program[..body_len] {
            interpret(&mut regs, inst);
        }
        let mut expected = 0u32;
        for k in 0..16 {
            expected ^= regs[8 + k];
        }

        let image = Image::from_text(program.iter().map(|i| i.encode()).collect());
        let result = Machine::new(&image, SimConfig::default()).run();
        prop_assert_eq!(&result.outcome, &Outcome::Exit(0));
        prop_assert_eq!(result.output, format!("{expected:08x}"));
        prop_assert_eq!(result.stats.instructions, program.len() as u64);
    }

    /// The same program also agrees when run under full protection —
    /// the protection pipeline must never change ALU semantics.
    #[test]
    fn protected_machine_matches_reference(
        seeds in prop::array::uniform16(any::<u16>()),
        ops in prop::collection::vec(arb_alu_inst(), 0..48),
    ) {
        let program = build_program(&seeds, &ops);
        let image = Image::from_text(program.iter().map(|i| i.encode()).collect());
        let plain = Machine::new(&image, SimConfig::default()).run();
        prop_assert_eq!(&plain.outcome, &Outcome::Exit(0));
        // Straight-line programs have no relocations and no branches, so
        // guard insertion applies without an assembler round trip.
        let config = flexprot_core::ProtectionConfig::new()
            .with_guards(flexprot_core::GuardConfig::with_density(1.0))
            .with_encryption(flexprot_core::EncryptConfig::whole_program(0xD1FF));
        let protected = flexprot_core::protect(&image, &config, None).expect("protect");
        let run = protected.run(SimConfig::default());
        prop_assert_eq!(&run.outcome, &Outcome::Exit(0));
        prop_assert_eq!(run.output, plain.output);
    }
}
