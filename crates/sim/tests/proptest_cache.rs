//! Differential testing of the cache model against a naive reference
//! implementation of set-associative LRU.

use flexprot_sim::{Cache, CacheConfig};
use proptest::prelude::*;

/// Naive reference: per set, a vector of (tag, dirty) in LRU order
/// (most-recent last).
struct RefCache {
    config: CacheConfig,
    sets: Vec<Vec<(u32, bool)>>,
}

impl RefCache {
    fn new(config: CacheConfig) -> RefCache {
        RefCache {
            config,
            sets: vec![Vec::new(); config.sets() as usize],
        }
    }

    /// Returns (hit, writeback address).
    fn access(&mut self, addr: u32, write: bool) -> (bool, Option<u32>) {
        let line = addr / self.config.line_bytes;
        let set_index = (line & (self.config.sets() - 1)) as usize;
        let tag = line / self.config.sets();
        let set = &mut self.sets[set_index];
        if let Some(pos) = set.iter().position(|&(t, _)| t == tag) {
            let (_, dirty) = set.remove(pos);
            set.push((tag, dirty || write));
            return (true, None);
        }
        let mut writeback = None;
        if set.len() == self.config.ways as usize {
            let (victim_tag, dirty) = set.remove(0);
            if dirty {
                writeback = Some(
                    (victim_tag * self.config.sets() + set_index as u32)
                        * self.config.line_bytes,
                );
            }
        }
        set.push((tag, write));
        (false, writeback)
    }
}

fn arb_config() -> impl Strategy<Value = CacheConfig> {
    // sets ∈ {1,2,4,8}, ways ∈ {1,2,4}, line ∈ {8,16,32}
    (0u32..4, prop::sample::select(vec![1u32, 2, 4]), prop::sample::select(vec![8u32, 16, 32]))
        .prop_map(|(set_log, ways, line_bytes)| {
            let sets = 1 << set_log;
            CacheConfig {
                size_bytes: sets * ways * line_bytes,
                line_bytes,
                ways,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Hit/miss and writeback sequences match the reference LRU exactly
    /// for arbitrary geometries and access streams.
    #[test]
    fn cache_matches_reference_lru(
        config in arb_config(),
        accesses in prop::collection::vec((0u32..4096, any::<bool>()), 1..200),
    ) {
        prop_assume!(config.validate().is_ok());
        let mut cache = Cache::new(config);
        let mut reference = RefCache::new(config);
        for (i, &(word, write)) in accesses.iter().enumerate() {
            let addr = word * 4;
            let access = cache.access(addr, write);
            let (ref_hit, ref_writeback) = reference.access(addr, write);
            prop_assert_eq!(access.hit, ref_hit, "access {} at {:#x}", i, addr);
            prop_assert_eq!(access.writeback, ref_writeback, "access {} at {:#x}", i, addr);
            prop_assert_eq!(access.line_addr, addr & !(config.line_bytes - 1));
        }
    }

    /// Flushing always empties the cache: the next access to every
    /// previously-resident line misses.
    #[test]
    fn flush_forgets_everything(
        config in arb_config(),
        words in prop::collection::btree_set(0u32..256, 1..16),
    ) {
        prop_assume!(config.validate().is_ok());
        let mut cache = Cache::new(config);
        for &w in &words {
            cache.access(w * 4, false);
        }
        cache.flush();
        // Immediately after a flush, accesses miss regardless of history;
        // touch lines in a fresh cache-sized window to avoid re-fill
        // interference between loop iterations.
        let mut seen_lines = std::collections::BTreeSet::new();
        for &w in &words {
            let addr = w * 4;
            let line = addr & !(config.line_bytes - 1);
            if seen_lines.insert(line) {
                prop_assert!(!cache.access(addr, false).hit, "line {line:#x}");
                break; // only the first post-flush access is guaranteed cold
            }
        }
    }
}
