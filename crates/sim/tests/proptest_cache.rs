//! Differential testing of the cache model against a naive reference
//! implementation of set-associative LRU, driven by the in-repo
//! deterministic PRNG.

use flexprot_isa::Rng64;
use flexprot_sim::{Cache, CacheConfig};

/// Naive reference: per set, a vector of (tag, dirty) in LRU order
/// (most-recent last).
struct RefCache {
    config: CacheConfig,
    sets: Vec<Vec<(u32, bool)>>,
}

impl RefCache {
    fn new(config: CacheConfig) -> RefCache {
        RefCache {
            config,
            sets: vec![Vec::new(); config.sets() as usize],
        }
    }

    /// Returns (hit, writeback address).
    fn access(&mut self, addr: u32, write: bool) -> (bool, Option<u32>) {
        let line = addr / self.config.line_bytes;
        let set_index = (line & (self.config.sets() - 1)) as usize;
        let tag = line / self.config.sets();
        let set = &mut self.sets[set_index];
        if let Some(pos) = set.iter().position(|&(t, _)| t == tag) {
            let (_, dirty) = set.remove(pos);
            set.push((tag, dirty || write));
            return (true, None);
        }
        let mut writeback = None;
        if set.len() == self.config.ways as usize {
            let (victim_tag, dirty) = set.remove(0);
            if dirty {
                writeback = Some(
                    (victim_tag * self.config.sets() + set_index as u32) * self.config.line_bytes,
                );
            }
        }
        set.push((tag, write));
        (false, writeback)
    }
}

/// Samples geometries: sets ∈ {1,2,4,8}, ways ∈ {1,2,4}, line ∈ {8,16,32}.
fn arb_config(rng: &mut Rng64) -> CacheConfig {
    let sets = 1u32 << rng.below(4);
    let ways = [1u32, 2, 4][rng.index(3)];
    let line_bytes = [8u32, 16, 32][rng.index(3)];
    CacheConfig {
        size_bytes: sets * ways * line_bytes,
        line_bytes,
        ways,
    }
}

/// Hit/miss and writeback sequences match the reference LRU exactly
/// for arbitrary geometries and access streams.
#[test]
fn cache_matches_reference_lru() {
    let mut rng = Rng64::new(0xCAC4_0001);
    for _ in 0..256 {
        let config = arb_config(&mut rng);
        if config.validate().is_err() {
            continue;
        }
        let mut cache = Cache::new(config);
        let mut reference = RefCache::new(config);
        let accesses = rng.range_inclusive(1, 199);
        for i in 0..accesses {
            let addr = rng.below(4096) as u32 * 4;
            let write = rng.chance(0.5);
            let access = cache.access(addr, write);
            let (ref_hit, ref_writeback) = reference.access(addr, write);
            assert_eq!(access.hit, ref_hit, "access {i} at {addr:#x}");
            assert_eq!(access.writeback, ref_writeback, "access {i} at {addr:#x}");
            assert_eq!(access.line_addr, addr & !(config.line_bytes - 1));
        }
    }
}

/// Flushing always empties the cache: the next access to a previously
/// resident line misses.
#[test]
fn flush_forgets_everything() {
    let mut rng = Rng64::new(0xCAC4_0002);
    for _ in 0..256 {
        let config = arb_config(&mut rng);
        if config.validate().is_err() {
            continue;
        }
        let count = rng.range_inclusive(1, 15) as usize;
        let words: std::collections::BTreeSet<u32> =
            (0..count).map(|_| rng.below(256) as u32).collect();
        let mut cache = Cache::new(config);
        for &w in &words {
            cache.access(w * 4, false);
        }
        cache.flush();
        // Only the first post-flush access is guaranteed cold (later ones
        // may hit lines the probe itself refilled).
        let &w = words.iter().next().expect("non-empty");
        assert!(!cache.access(w * 4, false).hit, "addr {:#x}", w * 4);
    }
}
