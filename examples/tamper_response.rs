//! Runs the full attack battery against one kernel under four protection
//! configurations and prints a miniature detection-coverage matrix
//! (experiment T3 in miniature).
//!
//! ```text
//! cargo run --release --example tamper_response
//! ```

use flexprot::attack::{evaluate, Attack};
use flexprot::core::{protect, EncryptConfig, GuardConfig, ProtectionConfig};
use flexprot::sim::{Machine, SimConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = flexprot::workloads::by_name("rle").expect("kernel exists");
    let image = workload.image();
    let expected = workload.expected_output();
    let baseline = Machine::new(&image, SimConfig::default()).run();
    let sim = SimConfig {
        max_instructions: baseline.stats.instructions * 4 + 10_000,
        ..SimConfig::default()
    };

    let configs: Vec<(&str, ProtectionConfig)> = vec![
        ("none", ProtectionConfig::new()),
        (
            "guards",
            ProtectionConfig::new().with_guards(GuardConfig::with_density(1.0)),
        ),
        (
            "guards+enc",
            ProtectionConfig::new()
                .with_guards(GuardConfig::with_density(1.0))
                .with_encryption(EncryptConfig::whole_program(0x0DD5_EED5)),
        ),
    ];

    println!("workload: {} ({})", workload.name, workload.description);
    println!(
        "{:<12} {:<12} {:>9} {:>9} {:>9} {:>11}",
        "config", "attack", "detected", "faulted", "wrong-out", "det-rate%"
    );
    for (name, config) in configs {
        let protected = protect(&image, &config, None)?;
        for attack in Attack::all() {
            let summary = evaluate(&protected, &expected, attack, 25, 1, &sim);
            println!(
                "{:<12} {:<12} {:>9} {:>9} {:>9} {:>10.1}%",
                name,
                attack.name(),
                summary.detected,
                summary.faulted,
                summary.wrong_output,
                summary.detection_rate() * 100.0
            );
        }
        println!();
    }
    println!("detected  = secure monitor raised a tamper event");
    println!("faulted   = mutated binary crashed (also a hardware-visible signal)");
    println!("wrong-out = silent corruption: the attacker won that trial");
    Ok(())
}
