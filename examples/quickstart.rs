//! Quickstart: assemble → protect → run on the monitored simulator.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use flexprot::core::{protect, EncryptConfig, GuardConfig, ProtectionConfig};
use flexprot::sim::{Machine, SimConfig};

const PROGRAM: &str = r#"
        .data
msg:    .asciiz "7 * 6 = "
        .text
main:   la   $a0, msg
        li   $v0, 4          # print_str
        syscall
        li   $t0, 7
        li   $t1, 6
        mul  $a0, $t0, $t1
        li   $v0, 1          # print_int
        syscall
        li   $v0, 10         # exit
        syscall
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Assemble the program (the image keeps relocations so the
    //    protection passes can rewrite it safely).
    let image = flexprot::asm::assemble(PROGRAM)?;
    println!("assembled {} text words", image.text.len());

    // 2. Baseline run — no protection hardware.
    let baseline = Machine::new(&image, SimConfig::default()).run();
    println!(
        "baseline : {:?}, output {:?}, {} cycles",
        baseline.outcome, baseline.output, baseline.stats.cycles
    );

    // 3. Protect: register guards in every block + whole-program
    //    instruction encryption.
    let config = ProtectionConfig::new()
        .with_guards(GuardConfig::with_density(1.0))
        .with_encryption(EncryptConfig::whole_program(0xDEAD_BEEF_0BAD_F00D));
    let protected = protect(&image, &config, None)?;
    println!(
        "protected: {} guards, {} encrypted region(s), +{:.1}% code size",
        protected.report.guards_inserted,
        protected.report.encrypted_regions,
        protected.report.size_overhead_fraction() * 100.0
    );

    // 4. Run the protected binary with the provisioned secure monitor.
    let run = protected.run(SimConfig::default());
    println!(
        "protected: {:?}, output {:?}, {} cycles (+{:.1}%)",
        run.outcome,
        run.output,
        run.stats.cycles,
        (run.stats.cycles as f64 / baseline.stats.cycles as f64 - 1.0) * 100.0
    );
    assert_eq!(run.output, baseline.output);

    // 5. The shipped text is ciphertext: disassembling it yields noise.
    let plain_disasm = image.disassemble();
    let cipher_disasm = protected.image.disassemble();
    println!(
        "\nfirst instruction of plaintext disassembly: {}",
        plain_disasm.lines().nth(1).unwrap_or_default().trim()
    );
    println!(
        "same word in the shipped (encrypted) binary: {}",
        cipher_disasm.lines().nth(1).unwrap_or_default().trim()
    );
    Ok(())
}
