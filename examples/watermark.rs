//! Covert watermarking through the guard salt channel: embed a customer id
//! into a protected binary, verify it still runs and self-checks, and
//! extract the id back from the shipped bytes.
//!
//! ```text
//! cargo run --example watermark
//! ```

use flexprot::core::watermark;
use flexprot::core::{insert_guards, GuardConfig};
use flexprot::secmon::SecMon;
use flexprot::sim::{Machine, Outcome, SimConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = flexprot::workloads::by_name("rle").expect("kernel exists");
    let image = workload.image();

    // Guard the binary; the salt bits of the guard instructions are the
    // covert channel.
    let outcome = insert_guards(&image, &GuardConfig::with_density(1.0), None)?;
    let config = outcome.secmon_config();
    println!(
        "{} guard sites -> {} bits of covert capacity",
        outcome.guards_inserted,
        watermark::capacity_bits(&config)
    );

    // Embed two different customer ids into two shipped builds.
    let mut build_a = outcome.image.clone();
    let mut build_b = outcome.image.clone();
    watermark::embed(&mut build_a, &config, b"CUST-0042")?;
    watermark::embed(&mut build_b, &config, b"CUST-1337")?;

    // Both builds run identically and pass all guard checks.
    for (name, build) in [("A", &build_a), ("B", &build_b)] {
        let mut machine =
            Machine::with_monitor(build, SimConfig::default(), SecMon::new(config.clone()));
        let run = machine.run();
        assert_eq!(run.outcome, Outcome::Exit(0));
        assert_eq!(run.output, workload.expected_output());
        println!(
            "build {name}: runs clean, {} guard checks passed",
            machine.monitor().checks_passed()
        );
    }

    // A leaked binary identifies its customer.
    let leaked = watermark::extract(&build_b, &config, 9).expect("extract");
    println!(
        "leaked binary traces to: {}",
        String::from_utf8_lossy(&leaked)
    );
    assert_eq!(&leaked, b"CUST-1337");

    // And the two builds differ only in covert bits — same word count,
    // same behaviour, different fingerprints.
    let differing = build_a
        .text
        .iter()
        .zip(&build_b.text)
        .filter(|(a, b)| a != b)
        .count();
    println!("builds differ in {differing} guard words (and nowhere else)");
    Ok(())
}
