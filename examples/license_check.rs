//! The motivating MATE scenario: a license check that an attacker patches
//! out. Unprotected, the bypass works silently; with register guards the
//! hardware kills the patched binary.
//!
//! ```text
//! cargo run --example license_check
//! ```

use flexprot::core::{protect, GuardConfig, ProtectionConfig};
use flexprot::isa::Inst;
use flexprot::sim::{Machine, Outcome, SimConfig};

/// The "application": refuses to run without a valid license value, then
/// does its real work.
const PROGRAM: &str = r#"
        .data
lic:    .word 0              # license word patched by the installer (0 = none)
denied: .asciiz "license invalid\n"
okmsg:  .asciiz "licensed; secret result = "
        .text
main:   jal  check_license
        beqz $v0, refuse
        la   $a0, okmsg
        li   $v0, 4
        syscall
        jal  secret_work
        move $a0, $v0
        li   $v0, 1
        syscall
        li   $v0, 10
        syscall
refuse: la   $a0, denied
        li   $v0, 4
        syscall
        li   $a0, 1
        li   $v0, 17         # exit(1)
        syscall

# check_license() -> 1 iff lic == 0xC0FFEE.
check_license:
        la   $t0, lic
        lw   $t1, 0($t0)
        li   $t2, 0xC0FFEE
        li   $v0, 0
        bne  $t1, $t2, cl_done
        li   $v0, 1
cl_done:
        jr   $ra

secret_work:
        li   $t0, 41
        addi $v0, $t0, 1
        jr   $ra
"#;

/// The attack: invert the license branch (`beqz` → `bnez`), the classic
/// one-instruction crack.
fn crack(image: &mut flexprot::isa::Image) {
    for (i, word) in image.text.iter_mut().enumerate() {
        if let Ok(Inst::Beq { rs, rt, off }) = Inst::decode(*word) {
            if rt == flexprot::isa::Reg::ZERO && rs != rt {
                *word = Inst::Bne { rs, rt, off }.encode();
                println!("  patched branch at text word {i}");
                return;
            }
        }
    }
    panic!("no branch found to patch");
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let image = flexprot::asm::assemble(PROGRAM)?;

    println!("original (no license installed):");
    let r = Machine::new(&image, SimConfig::default()).run();
    println!("  {:?}, output {:?}\n", r.outcome, r.output);

    println!("attacker cracks the UNPROTECTED binary:");
    let mut cracked = image.clone();
    crack(&mut cracked);
    let r = Machine::new(&cracked, SimConfig::default()).run();
    println!("  {:?}, output {:?}", r.outcome, r.output);
    println!("  -> bypass succeeded, secret computed without a license\n");

    println!("attacker cracks the GUARDED binary:");
    let config = ProtectionConfig::new().with_guards(GuardConfig::with_density(1.0));
    let protected = protect(&image, &config, None)?;
    let mut cracked = protected.clone();
    crack(&mut cracked.image);
    let r = cracked.run(SimConfig::default());
    match &r.outcome {
        Outcome::TamperDetected(event) => {
            println!("  secure monitor: {event}");
            println!(
                "  -> bypass detected after {} instructions",
                r.stats.instructions
            );
        }
        other => println!("  unexpected outcome {other:?}"),
    }

    // And the untampered protected binary still refuses politely.
    let r = protected.run(SimConfig::default());
    println!(
        "\nuntampered protected binary: {:?}, output {:?}",
        r.outcome, r.output
    );
    Ok(())
}
