//! The codesign loop in action: profile a program, then let the budget
//! optimizer pick per-function protection levels for a range of overhead
//! budgets, and verify the measured overhead (experiment F4 in miniature).
//!
//! ```text
//! cargo run --release --example design_space
//! ```

use flexprot::core::{
    optimize, protect, Cfg, EncryptConfig, GuardConfig, OptimizerConfig, Placement, Profile,
    ProtectionConfig, Selection,
};
use flexprot::sim::SimConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = flexprot::workloads::by_name("dijkstra").expect("kernel exists");
    let image = workload.image();
    let sim = SimConfig::default();

    // 1. Profile the unprotected program (the feedback half of codesign).
    let profile = Profile::collect_clean(&image, &sim);
    let cfg = Cfg::recover(&image)?;
    println!(
        "profiled {}: {} instructions, {} cycles, {} functions\n",
        workload.name,
        profile.instructions,
        profile.cycles,
        cfg.functions.len()
    );

    // 2. Sweep the overhead budget.
    println!(
        "{:>8} {:>9} {:>7} {:>10} {:>11}   plan",
        "budget%", "coverage", "est+%", "measured+%", "guards"
    );
    for budget in [0.01, 0.05, 0.1, 0.25, 0.5, 1.0] {
        let plan = optimize(
            &image,
            &cfg,
            &profile,
            &OptimizerConfig {
                budget_fraction: budget,
                ..OptimizerConfig::default()
            },
        );
        let config = ProtectionConfig::from_plan(
            &plan,
            GuardConfig {
                key: 0xC0DE,
                seed: 1,
                placement: Placement::ColdestFirst,
                selection: Selection::Density(0.0),
                enforce_spacing: false,
            },
            EncryptConfig::whole_program(0x5EED),
        );
        let protected = protect(&image, &config, Some(&profile))?;
        let run = protected.run(sim.clone());
        assert_eq!(run.output, workload.expected_output());
        let measured = (run.stats.cycles as f64 / profile.cycles as f64 - 1.0) * 100.0;
        let mut plan_text: Vec<String> = plan
            .functions
            .iter()
            .map(|(name, fp)| {
                format!(
                    "{name}:d{:.2}{}",
                    fp.guard_density,
                    if fp.encrypt { "+enc" } else { "" }
                )
            })
            .collect();
        plan_text.sort();
        println!(
            "{:>8.1} {:>9.3} {:>7.2} {:>10.2} {:>11}   {}",
            budget * 100.0,
            plan.coverage,
            plan.est_extra_cycles as f64 / profile.cycles as f64 * 100.0,
            measured,
            protected.report.guards_inserted,
            plan_text.join(" ")
        );
    }
    println!("\nHigher budgets buy more coverage; the optimizer spends them on");
    println!("cold code first, so measured overhead tracks the budget closely.");
    Ok(())
}
